package main

// BenchmarkServeThroughput measures end-to-end eval throughput of the daemon
// under concurrent load: many clients posting the same rotation-fan-out
// program to one session. This is the workload cross-request micro-batching
// exists for — the coalescer merges the shared-source rotations of
// concurrently queued requests into one hoisted ModUp.
//
// FASTD_SEQUENTIAL=1 runs the same benchmark with batching disabled (the
// -sequential daemon mode), which is how the checked-in straight-line
// baseline BENCH_serve_pre.json was recorded:
//
//	FASTD_SEQUENTIAL=1 make bench-serve-json BENCH_SERVE_JSON=BENCH_serve_pre.json
//
// `make benchdiff-serve` re-records the batched mode and gates old/new
// throughput with -fail-below.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"

	fast "github.com/fastfhe/fast"
)

func benchPost(b *testing.B, url string, body any, out any) bool {
	b.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		b.Error(err)
		return false
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Error(err)
		return false
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Error(err)
		return false
	}
	if resp.StatusCode != http.StatusOK {
		b.Errorf("%s: status %d: %s", url, resp.StatusCode, payload)
		return false
	}
	if out != nil {
		if err := json.Unmarshal(payload, out); err != nil {
			b.Error(err)
			return false
		}
	}
	return true
}

func BenchmarkServeThroughput(b *testing.B) {
	sequential := os.Getenv("FASTD_SEQUENTIAL") == "1"
	// One worker: evaluation serializes, so concurrent requests queue — the
	// queue wait is the coalescing window (that is the regime batching is
	// for; with an idle pool every batch has size 1 and the modes tie).
	d, err := newDaemon(daemonConfig{
		Workers:          1,
		QueueDepth:       256,
		BreakerThreshold: 1 << 20,
		Sequential:       sequential,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// Production-shaped parameters (DefaultConfig-sized ring) so evaluation
	// dominates the HTTP/JSON overhead.
	sessReq := testSessionRequest()
	sessReq.LogN = 11
	sessReq.Levels = 5
	var sr sessionResponse
	if !benchPost(b, ts.URL+"/v1/sessions", sessReq, &sr) {
		b.FailNow()
	}
	vals := make([]cnum, sr.Slots)
	for i := range vals {
		vals[i] = cnum{Re: 0.01 * float64(i%17), Im: -0.02}
	}
	var enc ciphertextResponse
	if !benchPost(b, ts.URL+"/v1/sessions/"+sr.ID+"/encrypt", map[string]any{"values": vals}, &enc) {
		b.FailNow()
	}

	prog := fast.NewProgram().In("x").
		Rotate("a", "x", 1).
		Rotate("b", "x", 4).
		Rotate("c", "x", -1).
		Add("s1", "a", "b").
		Add("s2", "s1", "c").
		AddConst("out", "s2", 0.5).
		Return("out")
	rawProg, err := json.Marshal(prog)
	if err != nil {
		b.Fatal(err)
	}
	req := map[string]any{
		"inputs":  map[string]string{"x": enc.Ciphertext},
		"program": json.RawMessage(rawProg),
	}

	// More client goroutines than GOMAXPROCS so requests actually queue —
	// the queue wait is the batching window.
	b.SetParallelism(8)
	var served atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var cr ciphertextResponse
		for pb.Next() {
			if !benchPost(b, ts.URL+"/v1/sessions/"+sr.ID+"/eval", req, &cr) {
				return
			}
			served.Add(1)
		}
	})
	b.StopTimer()
	if served.Load() == 0 {
		b.Fatal("no requests served")
	}
}
