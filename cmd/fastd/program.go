package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/costmodel"
)

// The eval endpoint accepts two program shapes, distinguished by the type of
// the "program" field:
//
//   - v1 (legacy): "program" is an ARRAY of straight-line instructions and
//     "output" names the result register. Methods default to the session's
//     default backend — exactly the pre-planner behavior, lowered onto a
//     fast.Program with PlanWithDefaultMethod.
//   - v2: "program" is an OBJECT — the fast.Program JSON format, carrying an
//     explicit `version: 2` field, a declared input list, per-op optional
//     methods ("" = planner decides) and its own output register.
//
// Either way the program compiles through the public planner (Context.Plan):
// rotation fan-out is hoisted, methods are chosen per site from the cost
// model, and the plan's unit weight prices admission.

// evalRequest is the v1 straight-line shape, kept as a concrete struct for
// clients and tests; on the wire it is parsed through evalWire.
type evalRequest struct {
	Inputs  map[string]string `json:"inputs"` // register -> base64 ciphertext
	Program []progOp          `json:"program"`
	Output  string            `json:"output"`
}

// progOp is one v1 instruction. Fields are op-dependent:
//
//	op          a     b/values/value/r   out
//	add,sub,mul a,b                      out
//	mulplain    a     values             out
//	addplain    a     values             out
//	mulconst    a     value              out
//	addconst    a     value              out
//	rotate      a     r                  out
//	conjugate   a                        out
//	rescale     a                        out
//
// method selects the key-switching backend for mul/rotate/conjugate
// ("hybrid"/"klss", default the session's default); no_rescale suppresses the
// automatic rescale of the multiplying ops.
type progOp struct {
	Op        string  `json:"op"`
	A         string  `json:"a"`
	B         string  `json:"b,omitempty"`
	Out       string  `json:"out"`
	R         int     `json:"r,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Values    []cnum  `json:"values,omitempty"`
	Method    string  `json:"method,omitempty"`
	NoRescale bool    `json:"no_rescale,omitempty"`
}

// evalWire is the version-agnostic decode shape of an eval request body.
type evalWire struct {
	Inputs  map[string]string `json:"inputs"`
	Program json.RawMessage   `json:"program"`
	Output  string            `json:"output"`
}

// compiledEval is a fully planned request, ready for (batched) execution.
type compiledEval struct {
	sess     *session
	prog     *fast.Program
	plan     *fast.Plan
	inputs   map[string]*fast.Ciphertext
	inputIDs map[string]string
}

// units returns the plan-derived admission weight.
func (ce *compiledEval) units() float64 { return ce.plan.Units() }

// compileEval parses, validates and plans an eval request body. Every error
// is a client error (HTTP 400) and never reaches the worker pool.
func compileEval(sess *session, body []byte) (*compiledEval, error) {
	var wire evalWire
	if err := json.Unmarshal(body, &wire); err != nil {
		return nil, fmt.Errorf("decode eval request: %w", err)
	}

	prog, v1, err := parseProgram(wire)
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}

	// Ciphertext coverage must match the declared inputs exactly: the planner
	// compiled level propagation and method choices from these levels, so a
	// silent extra or missing input would be a plan for a different program.
	declared := make(map[string]bool, len(prog.Inputs()))
	ce := &compiledEval{
		sess:     sess,
		prog:     prog,
		inputs:   make(map[string]*fast.Ciphertext, len(wire.Inputs)),
		inputIDs: make(map[string]string, len(wire.Inputs)),
	}
	levels := make(map[string]int, len(wire.Inputs))
	for _, name := range prog.Inputs() {
		declared[name] = true
		b64, ok := wire.Inputs[name]
		if !ok {
			return nil, fmt.Errorf("missing ciphertext for input %q", name)
		}
		ct, err := decodeCiphertext(sess.ctx, b64)
		if err != nil {
			return nil, fmt.Errorf("input %q: %w", name, err)
		}
		ce.inputs[name] = ct
		ce.inputIDs[name] = b64
		levels[name] = ct.Level()
	}
	for name := range wire.Inputs {
		if !declared[name] {
			return nil, fmt.Errorf("ciphertext %q does not match a declared input", name)
		}
	}

	var planOpts []fast.PlanOption
	if v1 {
		// v1 semantics: no per-op method means the session default, not a
		// planner choice.
		planOpts = append(planOpts, fast.PlanWithDefaultMethod(sess.ctx.Method()))
	}
	// Plan lookup by fingerprint: the key covers the program text, the
	// resolved input levels and the v1 method pin — everything compilation
	// depends on besides the session context the cache is scoped to. Plans
	// are immutable, so a cached instance serves concurrent requests; a miss
	// compiles once and publishes for the next request. Two racing first
	// requests may both compile — identical plans, either wins.
	key := sess.ctx.PlanFingerprint(prog, levels, planOpts...)
	if sess.plans != nil {
		if cached := sess.plans.get(key); cached != nil {
			ce.plan = cached
			return ce, nil
		}
	}
	ce.plan, err = sess.ctx.Plan(prog, levels, planOpts...)
	if err != nil {
		return nil, err
	}
	if sess.plans != nil {
		sess.plans.put(key, ce.plan)
	}
	return ce, nil
}

// parseProgram dispatches on the program field's JSON shape: array = v1
// straight-line, object = fast.Program v2 (explicit version field).
func parseProgram(wire evalWire) (prog *fast.Program, v1 bool, err error) {
	raw := bytes.TrimSpace(wire.Program)
	if len(raw) > 0 && raw[0] == '{' {
		prog = &fast.Program{}
		if err := json.Unmarshal(raw, prog); err != nil {
			return nil, false, fmt.Errorf("decode program: %w", err)
		}
		return prog, false, nil
	}
	var ops []progOp
	if len(raw) > 0 && string(raw) != "null" {
		if err := json.Unmarshal(raw, &ops); err != nil {
			return nil, false, fmt.Errorf("decode program: %w", err)
		}
	}
	prog, err = adaptV1(wire.Inputs, ops, wire.Output)
	return prog, true, err
}

// adaptV1 lowers a v1 straight-line request onto a fast.Program: the
// ciphertext map's keys become the declared inputs (sorted for determinism)
// and each instruction is appended verbatim, with wire method names parsed
// into (Method, pinned).
func adaptV1(inputs map[string]string, ops []progOp, output string) (*fast.Program, error) {
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	p := fast.NewProgram().In(names...)
	for i, op := range ops {
		m, pinned, err := fast.ParseMethod(op.Method)
		if err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", i, op.Op, err)
		}
		p.Append(fast.ProgramOp{
			Op: op.Op, Out: op.Out, A: op.A, B: op.B, R: op.R,
			Value: op.Value, Values: toComplex(op.Values),
			Method: m, MethodPinned: pinned, NoRescale: op.NoRescale,
		})
	}
	return p.Return(output), nil
}

// keygenUnits weighs session creation for admission: key generation touches
// every rotation key across the full chain, modeled as one key-switch per
// generated key plus a constant floor.
func keygenUnits(cfg fast.ContextConfig) float64 {
	cm := costmodel.ForContext(cfg.LogN, cfg.Levels)
	keys := len(cfg.Rotations) + 2 // + relin + conjugation
	return cm.KeySwitchUnits(costmodel.SiteCost{Method: costmodel.Hybrid, Level: cm.L, Hoist: 1}) * float64(keys)
}
