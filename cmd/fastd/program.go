package main

import (
	"context"
	"fmt"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/costmodel"
)

// evalRequest is a straight-line homomorphic program over named registers:
// inputs seed the registers with wire-format ciphertexts, each instruction
// reads registers (and literals) and writes a register, and the named output
// register is returned as a ciphertext.
type evalRequest struct {
	Inputs  map[string]string `json:"inputs"` // register -> base64 ciphertext
	Program []progOp          `json:"program"`
	Output  string            `json:"output"`
}

// progOp is one instruction. Fields are op-dependent:
//
//	op          a     b/values/value/r   out
//	add,sub,mul a,b                      out
//	mulplain    a     values             out
//	addplain    a     values             out
//	mulconst    a     value              out
//	addconst    a     value              out
//	rotate      a     r                  out
//	conjugate   a                        out
//	rescale     a                        out
//
// method selects the key-switching backend for mul/rotate/conjugate
// ("hybrid"/"klss", default the session's default); no_rescale suppresses the
// automatic rescale of the multiplying ops.
type progOp struct {
	Op        string  `json:"op"`
	A         string  `json:"a"`
	B         string  `json:"b,omitempty"`
	Out       string  `json:"out"`
	R         int     `json:"r,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Values    []cnum  `json:"values,omitempty"`
	Method    string  `json:"method,omitempty"`
	NoRescale bool    `json:"no_rescale,omitempty"`
}

// program is a compiled evalRequest: inputs decoded and validated, per-op
// option closures resolved, total unit cost estimated for admission.
type program struct {
	sess  *session
	regs  map[string]*fast.Ciphertext
	ops   []progOp
	out   string
	units float64
}

// compileProgram validates the request shape and decodes the input
// ciphertexts. Validation failures are client errors (HTTP 400) and never
// reach the worker pool.
func compileProgram(sess *session, req evalRequest) (*program, error) {
	if len(req.Program) == 0 {
		return nil, fmt.Errorf("empty program")
	}
	if req.Output == "" {
		return nil, fmt.Errorf("missing output register")
	}
	p := &program{sess: sess, regs: map[string]*fast.Ciphertext{}, ops: req.Program, out: req.Output}
	for name, b64 := range req.Inputs {
		ct, err := decodeCiphertext(sess.ctx, b64)
		if err != nil {
			return nil, fmt.Errorf("input %q: %w", name, err)
		}
		p.regs[name] = ct
	}
	defined := map[string]bool{}
	for name := range p.regs {
		defined[name] = true
	}
	for i, op := range p.ops {
		if op.Out == "" {
			return nil, fmt.Errorf("op %d (%s): missing out register", i, op.Op)
		}
		if op.A == "" || !defined[op.A] {
			return nil, fmt.Errorf("op %d (%s): undefined register %q", i, op.Op, op.A)
		}
		switch op.Op {
		case "add", "sub", "mul":
			if op.B == "" || !defined[op.B] {
				return nil, fmt.Errorf("op %d (%s): undefined register %q", i, op.Op, op.B)
			}
		case "mulplain", "addplain":
			if len(op.Values) == 0 {
				return nil, fmt.Errorf("op %d (%s): missing values", i, op.Op)
			}
		case "mulconst", "addconst", "rotate", "conjugate", "rescale":
		default:
			return nil, fmt.Errorf("op %d: unknown op %q", i, op.Op)
		}
		if op.Method != "" && op.Method != "hybrid" && op.Method != "klss" {
			return nil, fmt.Errorf("op %d (%s): unknown method %q", i, op.Op, op.Method)
		}
		defined[op.Out] = true
		p.units += opUnits(sess.cm, op)
	}
	if !defined[p.out] {
		return nil, fmt.Errorf("output register %q never written", p.out)
	}
	return p, nil
}

// run executes the program. ctx rides into every operation through the
// WithContext option, so a canceled request abandons mid-kernel with a typed
// error instead of finishing a doomed computation.
func (p *program) run(ctx context.Context) (*fast.Ciphertext, error) {
	fc := p.sess.ctx
	for i, op := range p.ops {
		opts := []fast.OpOption{fast.WithContext(ctx)}
		switch op.Method {
		case "hybrid":
			opts = append(opts, fast.WithMethod(fast.Hybrid))
		case "klss":
			opts = append(opts, fast.WithMethod(fast.KLSS))
		}
		if op.NoRescale {
			opts = append(opts, fast.NoRescale())
		}
		a := p.regs[op.A]
		var (
			out *fast.Ciphertext
			err error
		)
		switch op.Op {
		case "add":
			out, err = fc.Add(a, p.regs[op.B])
		case "sub":
			out, err = fc.Sub(a, p.regs[op.B])
		case "mul":
			out, err = fc.Mul(a, p.regs[op.B], opts...)
		case "mulplain":
			out, err = fc.MulPlain(a, toComplex(op.Values), opts...)
		case "addplain":
			out, err = fc.AddPlain(a, toComplex(op.Values))
		case "mulconst":
			out, err = fc.MulConst(a, op.Value, opts...)
		case "addconst":
			out, err = fc.AddConst(a, op.Value)
		case "rotate":
			out, err = fc.Rotate(a, op.R, opts...)
		case "conjugate":
			out, err = fc.Conjugate(a, opts...)
		case "rescale":
			out, err = fc.Rescale(a, opts...)
		}
		if err != nil {
			return nil, fmt.Errorf("op %d (%s -> %s): %w", i, op.Op, op.Out, err)
		}
		p.regs[op.Out] = out
	}
	return p.regs[p.out], nil
}

// ---- cost estimation -------------------------------------------------------

// opUnits estimates one instruction's work in the costmodel's 36-bit
// modular-operation equivalents. Key-switch-bearing ops use the full model at
// the session's top level (a conservative upper bound: real programs run at
// descending levels); element-wise ops count one pass over the ciphertext
// limbs.
func opUnits(cm costmodel.Params, op progOp) float64 {
	switch op.Op {
	case "mul", "rotate", "conjugate":
		m := costmodel.Hybrid
		if op.Method == "klss" {
			m = costmodel.KLSS
		}
		return cm.KeySwitch(m, cm.L, 1).Total()
	default:
		return cheapUnits(cm)
	}
}

// cheapUnits is the unit weight of an element-wise pass (add, rescale,
// plaintext ops, encode/encrypt/decrypt): one touch per coefficient per limb.
func cheapUnits(cm costmodel.Params) float64 {
	return float64(cm.N()) * float64(cm.L+1)
}

// keygenUnits weighs session creation for admission: key generation touches
// every rotation key across the full chain, modeled as one key-switch per
// generated key plus a constant floor.
func keygenUnits(cfg fast.ContextConfig) float64 {
	cm := costmodel.SetI()
	cm.LogN = cfg.LogN
	if cm.LogN == 0 {
		cm.LogN = 11
	}
	cm.L = cfg.Levels
	if cm.L == 0 {
		cm.L = 5
	}
	keys := float64(len(cfg.Rotations) + 2) // + relin + conjugation
	return keys * cm.KeySwitch(costmodel.Hybrid, cm.L, 1).Total()
}
