package main

import (
	"math"
	"net/http"
	"testing"

	fast "github.com/fastfhe/fast"
)

// TestPlanCacheLRU unit-tests the bounded LRU: eviction order, promotion on
// get, and idempotent re-insertion.
func TestPlanCacheLRU(t *testing.T) {
	pc := newPlanCache(2, nil, nil)
	pa, pb, pd := &fast.Plan{}, &fast.Plan{}, &fast.Plan{}
	pc.put("a", pa)
	pc.put("b", pb)
	if pc.get("a") != pa {
		t.Fatal("a missing after insert")
	}
	pc.put("c", pd) // capacity 2: evicts b (a was promoted by the get)
	if pc.get("b") != nil {
		t.Fatal("b should have been evicted as least-recently-used")
	}
	if pc.get("a") != pa || pc.get("c") != pd {
		t.Fatal("a and c should survive eviction")
	}
	pc.put("a", pb) // refresh existing key: no growth, value replaced
	if pc.size() != 2 {
		t.Fatalf("size = %d after refreshing existing key, want 2", pc.size())
	}
	if pc.get("a") != pb {
		t.Fatal("refresh should replace the cached value")
	}
}

// TestDaemonPlanCacheHitRate drives the serving path end to end: the same
// program evaluated repeatedly on one session must compile once and hit the
// plan cache on every subsequent request, surfacing as
// serve.plan_cache.{hits,misses} in the observer registry. Changing the input
// levels (same program text, lower-level ciphertexts) must key a fresh plan.
func TestDaemonPlanCacheHitRate(t *testing.T) {
	ob := fast.NewObserver()
	d, ts := newTestDaemon(t, daemonConfig{Workers: 1, Observer: ob})
	base := ts.URL

	sr := createSession(t, base, testSessionRequest())
	n := sr.Slots
	x := make([]complex128, n)
	y := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = complex(0.4*math.Cos(float64(i)), 0.1)
		y[i] = complex(0.25, -0.05*math.Sin(float64(i)))
	}
	cx := encryptValues(t, base, sr.ID, x)
	cy := encryptValues(t, base, sr.ID, y)

	counters := func() (hits, misses uint64) {
		snap := ob.Registry().Snapshot()
		return snap.Counters["serve.plan_cache.hits"], snap.Counters["serve.plan_cache.misses"]
	}

	prog := evalRequest{
		Inputs: map[string]string{"x": cx.Ciphertext, "y": cy.Ciphertext},
		Program: []progOp{
			{Op: "mul", A: "x", B: "y", Out: "t"},
			{Op: "rotate", A: "t", R: 1, Out: "out"},
		},
		Output: "out",
	}
	const evals = 5
	var lastCT string
	for i := 0; i < evals; i++ {
		var cr ciphertextResponse
		status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval", nil, prog, &cr)
		if status != http.StatusOK {
			t.Fatalf("eval %d: status %d: %s", i, status, raw)
		}
		lastCT = cr.Ciphertext
	}
	hits, misses := counters()
	if misses != 1 {
		t.Fatalf("misses = %d after %d identical evals, want exactly 1 compile", misses, evals)
	}
	if hits != evals-1 {
		t.Fatalf("hits = %d after %d identical evals, want %d", hits, evals, evals-1)
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.8 {
		t.Fatalf("hit rate %.2f below 0.8 for a steady workload", rate)
	}

	// Same program text, different input levels (the eval output sits one
	// level below the fresh encryptions): a correct cache MUST key these
	// separately — the planner's method and unit decisions are level-dependent.
	prog.Inputs = map[string]string{"x": lastCT, "y": lastCT}
	status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval", nil, prog, nil)
	if status != http.StatusOK {
		t.Fatalf("lower-level eval: status %d: %s", status, raw)
	}
	_, misses2 := counters()
	if misses2 != misses+1 {
		t.Fatalf("misses = %d after level change, want %d (fresh compile)", misses2, misses+1)
	}

	// The cached plans live per session and the shapes above stay far below
	// capacity, so the session cache holds exactly the two compiled plans.
	sh := d.shards[0]
	sh.mu.RLock()
	sess := sh.sessions[sr.ID]
	sh.mu.RUnlock()
	if got := sess.plans.size(); got != 2 {
		t.Fatalf("session plan cache holds %d plans, want 2", got)
	}
}
