package main

import (
	"container/list"
	"sync"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/obs"
)

// planCache is a bounded per-session LRU of compiled plans keyed by
// fast.Plan fingerprint. A fingerprint covers the program text, the resolved
// input levels and the plan-wide default method — everything Context.Plan
// compiles from except the context itself, which is fixed per session — so a
// hit replays the exact plan a fresh compile would produce. Plans are
// immutable and safe for concurrent executions, so one cached instance can
// serve overlapping requests.
//
// Repeated serving workloads (the same program evaluated per request at the
// same input levels) hit the cache on every request after the first,
// skipping DAG construction, Aether method selection and unit pricing.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses *obs.Counter // shared daemon-wide counters; nil-safe
}

type planCacheEntry struct {
	key  string
	plan *fast.Plan
}

// planCacheCap bounds each session's cache. Serving deployments run a
// handful of distinct programs per keyspace; 64 distinct (program, levels)
// shapes is far past any expected working set while capping worst-case
// retained plans.
const planCacheCap = 64

func newPlanCache(capacity int, hits, misses *obs.Counter) *planCache {
	if capacity <= 0 {
		capacity = planCacheCap
	}
	return &planCache{
		cap:    capacity,
		ll:     list.New(),
		items:  make(map[string]*list.Element, capacity),
		hits:   hits,
		misses: misses,
	}
}

// get returns the cached plan for key, promoting it to most-recent, or nil
// on a miss. Hit/miss counters are bumped here so every lookup is tallied.
func (pc *planCache) get(key string) *fast.Plan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.items[key]
	if !ok {
		pc.misses.Inc()
		return nil
	}
	pc.ll.MoveToFront(el)
	pc.hits.Inc()
	return el.Value.(*planCacheEntry).plan
}

// put inserts a freshly compiled plan, evicting the least-recently-used
// entry past capacity. Re-inserting an existing key (two requests racing the
// same first compile) refreshes the entry rather than duplicating it.
func (pc *planCache) put(key string, p *fast.Plan) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.items[key]; ok {
		el.Value.(*planCacheEntry).plan = p
		pc.ll.MoveToFront(el)
		return
	}
	pc.items[key] = pc.ll.PushFront(&planCacheEntry{key: key, plan: p})
	for pc.ll.Len() > pc.cap {
		last := pc.ll.Back()
		pc.ll.Remove(last)
		delete(pc.items, last.Value.(*planCacheEntry).key)
	}
}

// drop empties the cache and returns the number of entries discarded — the
// session delete/evict path, where retaining compiled plans for a keyspace
// that no longer resides in memory would defeat the eviction's purpose.
// The count feeds the serve.plan_cache.evicted counter.
func (pc *planCache) drop() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n := pc.ll.Len()
	pc.ll.Init()
	pc.items = make(map[string]*list.Element)
	return n
}

// size returns the current entry count (test hook).
func (pc *planCache) size() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ll.Len()
}
