package main

import (
	"container/list"
	"net/http"
	"sync"
)

// idemRecord is one completed idempotent request as journaled on disk and
// replayed to retries: the key, the recorded HTTP outcome and the exact
// response body the original caller saw. Body is []byte (base64 on the wire)
// rather than json.RawMessage so the journal round-trip is byte-exact —
// RawMessage would be re-compacted on marshal and a replay would no longer
// compare equal to the original response.
type idemRecord struct {
	Key    string `json:"key"`
	Status int    `json:"status"`
	Body   []byte `json:"body"`
}

// idemEntry is one key's slot in the table. done is closed when the first
// execution completes; waiters replay status/body afterwards.
type idemEntry struct {
	key    string
	done   chan struct{}
	status int
	body   []byte
}

func (e *idemEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// idemTable is a bounded per-session LRU of idempotent request outcomes.
// Exactly-once semantics within a process come from in-flight coalescing:
// the first request for a key owns execution, concurrent duplicates block on
// done and replay the recorded outcome. Exactly-once across restarts comes
// from the journal (persist.go): records are fsync'd before the owning
// response is released, and the table is rebuilt from the journal on restore.
//
// The table is bounded: once full, the least-recently-touched COMPLETED entry
// is discarded (in-flight entries are never evicted — their owner still needs
// to complete them). A retry arriving after its record was evicted re-executes;
// the bound is the standard dedup-window trade-off, sized so that any retry
// inside a sane client backoff horizon hits its record.
type idemTable struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently touched
	items map[string]*list.Element
}

const idemTableCap = 512

func newIdemTable(capacity int) *idemTable {
	if capacity <= 0 {
		capacity = idemTableCap
	}
	return &idemTable{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// begin claims the key. owner=true means the caller must execute the request
// and finish with complete() or abandon(). owner=false means an entry already
// exists: wait on entry.done (it may already be closed) and replay.
func (t *idemTable) begin(key string) (entry *idemEntry, owner bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[key]; ok {
		t.ll.MoveToFront(el)
		return el.Value.(*idemEntry), false
	}
	e := &idemEntry{key: key, done: make(chan struct{})}
	t.items[key] = t.ll.PushFront(e)
	t.evictLocked()
	return e, true
}

// complete records the outcome and releases all waiters.
func (t *idemTable) complete(e *idemEntry, status int, body []byte) {
	t.mu.Lock()
	e.status = status
	e.body = body
	t.mu.Unlock()
	close(e.done)
}

// abandon removes an in-flight entry whose execution ended in a transient,
// non-recordable outcome (queue full, shed, 5xx): the next retry must
// re-execute, not replay a failure. Waiters are released and observe
// status==0, which sends them back through execution themselves.
func (t *idemTable) abandon(e *idemEntry) {
	t.mu.Lock()
	if el, ok := t.items[e.key]; ok && el.Value.(*idemEntry) == e {
		t.ll.Remove(el)
		delete(t.items, e.key)
	}
	t.mu.Unlock()
	close(e.done)
}

// insert seeds a completed record (journal replay on session restore).
func (t *idemTable) insert(rec idemRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[rec.Key]; ok {
		e := el.Value.(*idemEntry)
		if e.completed() {
			e.status, e.body = rec.Status, rec.Body
		}
		t.ll.MoveToFront(el)
		return
	}
	e := &idemEntry{key: rec.Key, done: make(chan struct{}), status: rec.Status, body: rec.Body}
	close(e.done)
	t.items[rec.Key] = t.ll.PushFront(e)
	t.evictLocked()
}

// records returns the completed entries oldest-first — the compaction set the
// journal is rewritten to on eviction, bounded exactly like the table.
func (t *idemTable) records() []idemRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	recs := make([]idemRecord, 0, t.ll.Len())
	for el := t.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*idemEntry)
		if e.completed() {
			recs = append(recs, idemRecord{Key: e.key, Status: e.status, Body: e.body})
		}
	}
	return recs
}

// evictLocked discards least-recently-touched completed entries past capacity.
func (t *idemTable) evictLocked() {
	for el := t.ll.Back(); el != nil && t.ll.Len() > t.cap; {
		prev := el.Prev()
		if e := el.Value.(*idemEntry); e.completed() {
			t.ll.Remove(el)
			delete(t.items, e.key)
		}
		el = prev
	}
}

// responseRecorder buffers a handler's response so the idempotency layer can
// journal it before release and replay it to retries. Only the status and
// body are captured; Content-Type is reconstructed on replay (all recordable
// fastd responses are JSON).
type responseRecorder struct {
	header http.Header
	status int
	body   []byte
}

func newResponseRecorder() *responseRecorder {
	return &responseRecorder{header: make(http.Header), status: http.StatusOK}
}

func (rr *responseRecorder) Header() http.Header { return rr.header }

func (rr *responseRecorder) WriteHeader(status int) { rr.status = status }

func (rr *responseRecorder) Write(p []byte) (int, error) {
	rr.body = append(rr.body, p...)
	return len(p), nil
}

// recordable reports whether the captured outcome is deterministic and safe
// to pin to the key forever: success (200) and validation rejections (400/404)
// would recur on any retry. Transient admission/ladder outcomes (429, 503,
// 504, 408, 500) must NOT be recorded — the whole point of the client's retry
// is that they can succeed next time.
func (rr *responseRecorder) recordable() bool {
	switch rr.status {
	case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		return true
	}
	return false
}
