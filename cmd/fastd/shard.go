package main

import (
	"container/list"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/serve"
)

// evalShard is one failure-isolated serving lane: its own admission queue,
// worker pool, circuit breaker, micro-batcher and resident-session LRU. The
// consistent-hash ring pins each session ID to one shard, so an overloaded
// queue, a tripped breaker or a panic storm on one shard cannot slow, refuse
// or wedge traffic owned by its neighbors. Sessions, plan caches (which are
// per-session) and restore singleflights all live inside the shard; only the
// snapshot store, the shared evk tier and the MaxSessions budget are global.
type evalShard struct {
	id      int
	d       *daemon
	srv     *serve.Server
	batcher *serve.Batcher
	breaker *serve.Breaker

	maxResident int // this shard's slice of cfg.MaxResident

	// mu guards the shard-local registry. Lock ordering: daemon.mu (global
	// registry) strictly BEFORE evalShard.mu — never the reverse.
	mu        sync.RWMutex
	sessions  map[string]*session
	restoring map[string]chan struct{} // restore singleflight, closed on completion
	lru       *list.List               // resident eviction order, front = most recent

	mBreakerState *obs.Gauge
}

func newEvalShard(d *daemon, id int, maxResident int) *evalShard {
	cfg := d.cfg
	reg := cfg.Observer.Registry()
	sh := &evalShard{
		id:          id,
		d:           d,
		breaker:     serve.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		maxResident: maxResident,
		sessions:    map[string]*session{},
		restoring:   map[string]chan struct{}{},
		lru:         list.New(),
	}
	sh.srv = serve.New(serve.Config{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		Breaker:    sh.breaker,
		Reg:        reg,
	})
	// Eval requests batch by session: concurrently admitted programs on one
	// keyspace execute as a micro-batch, sharing hoisted decompositions when
	// their rotation groups read identical input ciphertexts. Batch keys are
	// session IDs and sessions are shard-pinned, so per-shard batchers never
	// split a batch.
	sh.batcher = serve.NewBatcher(sh.srv, sh.runEvalBatch, reg)
	if reg != nil {
		// Per-shard breaker gauge, driven by the transition hook so scrapes
		// between transitions still see the live state. Values follow
		// serve.BreakerState: 0 closed, 1 open, 2 half-open.
		sh.mBreakerState = reg.Gauge("serve.breaker.state{shard=" + strconv.Itoa(id) + "}")
		sh.mBreakerState.Set(int64(serve.BreakerClosed))
		gauge := sh.mBreakerState
		sh.breaker.OnStateChange(func(_, now serve.BreakerState) {
			gauge.Set(int64(now))
		})
	}
	return sh
}

// fenced reports whether the ring has fenced this shard (routing skips it).
func (sh *evalShard) fenced() bool { return sh.d.ring.Fenced(sh.id) }

// resident returns the shard's resident-session count.
func (sh *evalShard) resident() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.sessions)
}

// runEvalBatch executes one micro-batch of compiled eval requests. All items
// share a batch key (the session ID), so one session context executes them;
// each run keeps its own request context for per-request cancellation.
func (sh *evalShard) runEvalBatch(items []*serve.BatchItem) {
	runs := make([]*fast.Run, len(items))
	var sess *session
	for i, it := range items {
		ce := it.Payload.(*compiledEval)
		sess = ce.sess
		runs[i] = &fast.Run{
			Plan:     ce.plan,
			Inputs:   ce.inputs,
			InputIDs: ce.inputIDs,
			Ctx:      it.Ctx,
		}
	}
	sess.ctx.ExecuteBatch(runs)
	sh.recordFaultHealth(sess)
	for i, it := range items {
		// Stamp the batch sequence onto the in-flight record so the access
		// log and /debug/requests can join against /debug/plans.
		obs.RequestFrom(it.Ctx).SetBatch(runs[i].Batch)
		if runs[i].Err != nil {
			it.Finish(nil, runs[i].Err)
			continue
		}
		resp, err := encodeCiphertext(runs[i].Out)
		if err != nil {
			it.Finish(nil, err)
			continue
		}
		it.Finish(resp, nil)
	}
}

// recordFaultHealth feeds this shard's circuit breaker the session's modeled
// Hemera transfer-fault delta: a request whose key transfers needed recovery
// actions (retries, timeouts, refetches) counts as a downstream failure even
// though the computation itself succeeded bit-exactly — the breaker's job is
// to detect the transfer fault storm, not corrupt data.
//
// Sessions without an active fault plan record NOTHING here: the breaker is
// shard-global and consecutive-failure based, so a RecordSuccess per healthy
// eval would reset the streak and let any interleaved healthy-session traffic
// mask a sustained fault storm on another session. Half-open recovery does
// not depend on this call — the admission layer resolves the probe task's
// outcome itself (serve.Server.settle), so a clean eval still re-closes an
// open breaker after faults stop.
func (sh *evalShard) recordFaultHealth(sess *session) {
	if !sess.ctx.FaultPlanActive() {
		return
	}
	if delta := sess.faultRecoveryDelta(); delta > 0 {
		sh.d.mFaultTrips.Inc()
		sh.breaker.RecordFailure()
	} else {
		sh.breaker.RecordSuccess()
	}
}

// ---- Supervision, fencing and failover -------------------------------------

// probeShard is the supervisor's health probe: a zero-unit task through the
// shard's own admission queue and worker pool, so a wedged pool, a queue that
// never drains, or a deadlocked worker all surface as probe failures. An open
// or half-open breaker is deliberately reported healthy — the shard is
// refusing work with typed errors by design, and a no-op probe task must not
// consume (and close) the breaker's single half-open recovery slot that real
// traffic is entitled to.
func (d *daemon) probeShard(ctx context.Context, i int) error {
	sh := d.shards[i]
	if sh.breaker.State() != serve.BreakerClosed {
		return nil
	}
	return sh.srv.Do(ctx, serve.Op{Name: "probe", Units: 0}, func(context.Context) error { return nil })
}

// onFence migrates a fenced shard's registry out so the survivors can serve
// its sessions: every resident session with a current snapshot returns to the
// global persisted set (its next request restores it, lazily, on whichever
// live shard the ring now routes it to); a session whose snapshot write had
// degraded (resident-only) is lost with the shard — exactly what a SIGKILL
// would have cost — and is released from the occupancy budget.
//
// The ring was fenced before this callback runs, so no new request routes
// here; requests that resolve the session to this shard through the owner
// table in the window before migration completes get ErrShardDown (503 +
// Retry-After) and find the snapshot on a survivor when they retry.
func (d *daemon) onFence(i int, reason string) {
	sh := d.shards[i]
	migrated, lost := 0, 0
	d.mu.Lock()
	sh.mu.Lock()
	for id, s := range sh.sessions {
		delete(sh.sessions, id)
		delete(d.owners, id)
		if s.lruEl != nil {
			sh.lru.Remove(s.lruEl)
			s.lruEl = nil
		}
		d.mPlanEvicted.Add(uint64(s.plans.drop()))
		s.mu.Lock()
		persisted := s.persisted
		s.mu.Unlock()
		if d.store != nil && persisted {
			d.persisted[id] = struct{}{}
			migrated++
		} else {
			d.occupancy.Add(-1)
			lost++
		}
	}
	sh.mu.Unlock()
	d.mu.Unlock()
	d.resident.Add(int64(-(migrated + lost)))
	d.mShardMigrated.Add(uint64(migrated))
	d.mShardLost.Add(uint64(lost))
	d.updateOccupancy()
	d.logger.Warn("shard fenced", "shard", i, "reason", reason,
		"migrated", migrated, "lost", lost, "live", d.ring.Live())
}

// onUnfence logs a recovered shard rejoining the ring. Its sessions are NOT
// pulled back eagerly: they stay resident where failover restored them (the
// owner table routes to the current holder) and drift home lazily — the next
// restore-after-eviction lands on the ring-routed shard again.
func (d *daemon) onUnfence(i int) {
	d.logger.Info("shard unfenced", "shard", i, "live", d.ring.Live())
}

// handleKillShard is the chaos endpoint: an in-process SIGKILL equivalent.
// The shard is fenced permanently (the supervisor never probes or unfences a
// killed shard), its hash range remaps to the survivors, and its sessions
// fail over through their snapshots. Idempotent per shard.
func (d *daemon) handleKillShard(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	i, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || i < 0 || i >= len(d.shards) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid shard %q", r.PathValue("id")))
		return
	}
	d.sup.Kill(i, "kill endpoint")
	writeJSON(w, map[string]any{
		"shard":  i,
		"killed": true,
		"live":   d.ring.Live(),
	})
}

// shardReadiness is one shard's row in the /readyz per-shard view.
type shardReadiness struct {
	Shard    int    `json:"shard"`
	Fenced   bool   `json:"fenced"`
	Killed   bool   `json:"killed"`
	Breaker  string `json:"breaker"`
	Queue    int    `json:"queue_depth"`
	Resident int    `json:"resident"`
	Draining bool   `json:"draining"`
}

func (d *daemon) shardReadiness() []shardReadiness {
	out := make([]shardReadiness, len(d.shards))
	for i, sh := range d.shards {
		out[i] = shardReadiness{
			Shard:    i,
			Fenced:   d.ring.Fenced(i),
			Killed:   d.sup.Killed(i),
			Breaker:  sh.breaker.State().String(),
			Queue:    sh.srv.QueueLen(),
			Resident: sh.resident(),
			Draining: sh.srv.Draining(),
		}
	}
	return out
}

// evkReadiness surfaces the shared evk tier on /readyz so operators (and the
// chaos harness) can check budget compliance and cross-shard reuse without
// scraping /metrics.
type evkReadiness struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Evictions      uint64 `json:"evictions"`
	CrossShardHits uint64 `json:"cross_shard_hits"`
	ResidentBytes  int64  `json:"resident_bytes"`
	BudgetBytes    int64  `json:"budget_bytes"`
}

func (d *daemon) evkReadiness() evkReadiness {
	st := d.evk.Stats()
	return evkReadiness{
		Hits:           st.Hits,
		Misses:         st.Misses,
		Evictions:      st.Evictions,
		CrossShardHits: st.CrossShardHits,
		ResidentBytes:  st.ResidentBytes,
		BudgetBytes:    st.Capacity,
	}
}

// splitResident slices the global MaxResident bound across n shards (every
// shard gets at least 1).
func splitResident(maxResident, n int) []int {
	out := make([]int, n)
	base, extra := maxResident/n, maxResident%n
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}
