package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fastfhe/fast/internal/obs"
)

// lockedBuffer lets the test read the access log while the daemon's logger
// may still be writing to it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) {
			return false
		}
	}
	return len(s) > 0
}

// TestRequestIDAssignedAndEchoed: a request without correlation headers gets
// a fresh 32-hex ID, echoed on the response.
func TestRequestIDAssignedAndEchoed(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if len(id) != 32 || !isLowerHex(id) {
		t.Fatalf("X-Request-Id = %q, want 32 lowercase hex chars", id)
	}
	if resp.Header.Get("traceparent") != "" {
		t.Fatal("no inbound traceparent: response must not invent one")
	}
}

// TestRequestIDHonoredAndSanitized: a well-formed client ID is echoed
// verbatim; a hostile one is discarded for a fresh assignment.
func TestRequestIDHonoredAndSanitized(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 1})
	cases := []struct {
		in     string
		echoed bool
	}{
		{"client-id_42.abc", true},
		{"ABCdef0123", true},
		{strings.Repeat("a", 128), true},
		{strings.Repeat("a", 129), false}, // too long
		{"bad id with spaces", false},
		{"quote\"and{brace", false},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
		req.Header.Set("X-Request-Id", tc.in)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Request-Id")
		if tc.echoed && got != tc.in {
			t.Fatalf("id %q: echoed %q, want verbatim", tc.in, got)
		}
		if !tc.echoed {
			if got == tc.in {
				t.Fatalf("hostile id %q echoed verbatim", tc.in)
			}
			if len(got) != 32 || !isLowerHex(got) {
				t.Fatalf("hostile id %q: replacement %q is not a fresh 32-hex ID", tc.in, got)
			}
		}
	}
}

// TestSanitizeRequestID covers the byte-level rejections the HTTP client
// itself refuses to send (header-splitting and log-injection payloads).
func TestSanitizeRequestID(t *testing.T) {
	for _, bad := range []string{
		"", "inject\x00null", "newline\nSet-Cookie: x", "cr\rhere",
		"tab\there", "ünïcode", strings.Repeat("x", 129),
	} {
		if got := sanitizeRequestID(bad); got != "" {
			t.Fatalf("sanitizeRequestID(%q) = %q, want rejection", bad, got)
		}
	}
	for _, good := range []string{"a", "A-Z_0.9", strings.Repeat("x", 128)} {
		if got := sanitizeRequestID(good); got != good {
			t.Fatalf("sanitizeRequestID(%q) = %q, want verbatim", good, got)
		}
	}
}

// TestTraceparentRoundTrip: an inbound traceparent is returned with the same
// trace-id and flags but a fresh span-id, and the trace-id becomes the
// request ID.
func TestTraceparentRoundTrip(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 1})
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const spanID = "00f067aa0ba902b7"
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", "00-"+traceID+"-"+spanID+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	tp, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get("traceparent"))
	}
	if tp.TraceID != traceID {
		t.Fatalf("trace-id changed: got %s, want %s", tp.TraceID, traceID)
	}
	if tp.SpanID == spanID {
		t.Fatal("span-id must be replaced with this hop's")
	}
	if tp.Flags != "01" {
		t.Fatalf("flags = %s, want 01 preserved", tp.Flags)
	}
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Fatalf("X-Request-Id = %q, want the trace-id %s", got, traceID)
	}

	// An explicit X-Request-Id wins over the traceparent trace-id.
	req2, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req2.Header.Set("traceparent", "00-"+traceID+"-"+spanID+"-01")
	req2.Header.Set("X-Request-Id", "explicit-id")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "explicit-id" {
		t.Fatalf("X-Request-Id = %q, want explicit-id", got)
	}
}

// TestRequestIDUniqueUnderConcurrentLoad hammers the middleware from many
// goroutines (run with -race in CI) and checks every assigned ID is unique.
func TestRequestIDUniqueUnderConcurrentLoad(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 2})
	const goroutines, per = 8, 25
	var mu sync.Mutex
	seen := make(map[string]struct{}, goroutines*per)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := http.Get(ts.URL + "/healthz")
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				id := resp.Header.Get("X-Request-Id")
				mu.Lock()
				_, dup := seen[id]
				seen[id] = struct{}{}
				mu.Unlock()
				if dup {
					t.Errorf("duplicate request ID %q", id)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(seen) != goroutines*per {
		t.Fatalf("got %d unique IDs, want %d", len(seen), goroutines*per)
	}
}

// accessLogLines parses every JSON record the daemon logged so far.
func accessLogLines(t *testing.T, buf *lockedBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("access log line is not JSON: %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

// waitForLogLines polls until the access log holds at least n records (the
// log line lands after the response body is flushed, so the client can
// observe the reply before the record exists).
func waitForLogLines(t *testing.T, buf *lockedBuffer, n int) []map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := accessLogLines(t, buf)
		if len(recs) >= n {
			return recs
		}
		if time.Now().After(deadline) {
			t.Fatalf("access log has %d records, want >= %d:\n%s", len(recs), n, buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAccessLogSchema: one request yields one JSON access-log record whose
// fields join against the response headers, with outcome classified from
// the status fallback ("ok" below 400, "error" at or above).
func TestAccessLogSchema(t *testing.T) {
	buf := &lockedBuffer{}
	_, ts := newTestDaemon(t, daemonConfig{
		Workers: 1,
		Logger:  obs.NewLogger(buf, slog.LevelInfo),
	})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantID := resp.Header.Get("X-Request-Id")

	resp404, err := http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()

	recs := waitForLogLines(t, buf, 2)
	byPath := map[string]map[string]any{}
	for _, rec := range recs {
		if rec["msg"] != "request" {
			t.Fatalf("msg = %v, want request", rec["msg"])
		}
		for _, k := range []string{"id", "method", "path", "status", "outcome", "dur_ms", "bytes"} {
			if _, ok := rec[k]; !ok {
				t.Fatalf("record missing %q: %v", k, rec)
			}
		}
		byPath[rec["path"].(string)] = rec
	}
	ok := byPath["/healthz"]
	if ok == nil || ok["id"] != wantID || ok["status"].(float64) != 200 || ok["outcome"] != "ok" {
		t.Fatalf("healthz record wrong: %v (want id %s, status 200, outcome ok)", ok, wantID)
	}
	bad := byPath["/no/such/route"]
	if bad == nil || bad["status"].(float64) != 404 || bad["outcome"] != "error" {
		t.Fatalf("404 record wrong: %v", bad)
	}
}

// TestAccessLogOutcomeFromLadder: a typed admission rejection logs its exact
// degradation-ladder rung, not the generic status fallback. Draining is the
// one rung that is fully deterministic to trigger.
func TestAccessLogOutcomeFromLadder(t *testing.T) {
	buf := &lockedBuffer{}
	d, ts := newTestDaemon(t, daemonConfig{
		Workers: 1,
		Logger:  obs.NewLogger(buf, slog.LevelInfo),
	})
	base := ts.URL
	sid := createSession(t, base, testSessionRequest()).ID
	ct := encryptValues(t, base, sid, []complex128{1 + 2i})

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	status, _ := doJSON(t, "POST", base+"/v1/sessions/"+sid+"/eval", nil, evalRequest{
		Inputs:  map[string]string{"x": ct.Ciphertext},
		Program: []progOp{{Op: "mul", Out: "y", A: "x", B: "x"}},
		Output:  "y",
	}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("eval while draining: status %d, want 503", status)
	}
	recs := waitForLogLines(t, buf, 3) // session create + encrypt + eval
	var evalRec map[string]any
	for _, rec := range recs {
		if p, _ := rec["path"].(string); strings.HasSuffix(p, "/eval") {
			evalRec = rec
		}
	}
	if evalRec == nil {
		t.Fatalf("no eval record in access log:\n%s", buf.String())
	}
	if evalRec["outcome"] != "draining" {
		t.Fatalf("eval outcome = %v, want draining", evalRec["outcome"])
	}
	if evalRec["status"].(float64) != 503 {
		t.Fatalf("eval status = %v, want 503", evalRec["status"])
	}
}

// TestSlowRequestLog: above the threshold, a second warn-level record lands
// with the threshold attached.
func TestSlowRequestLog(t *testing.T) {
	buf := &lockedBuffer{}
	_, ts := newTestDaemon(t, daemonConfig{
		Workers:     1,
		Logger:      obs.NewLogger(buf, slog.LevelInfo),
		SlowRequest: time.Nanosecond, // everything is slow
	})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	recs := waitForLogLines(t, buf, 2)
	var slow map[string]any
	for _, rec := range recs {
		if rec["msg"] == "slow request" {
			slow = rec
		}
	}
	if slow == nil {
		t.Fatalf("no slow-request record:\n%s", buf.String())
	}
	if slow["level"] != "WARN" {
		t.Fatalf("slow record level = %v, want WARN", slow["level"])
	}
	if _, ok := slow["threshold_ms"]; !ok {
		t.Fatalf("slow record missing threshold_ms: %v", slow)
	}
}
