package main

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"github.com/fastfhe/fast/internal/obs"
	shardpkg "github.com/fastfhe/fast/internal/shard"
)

// forwarder is the multi-node skeleton: with -peers set, session-scoped
// requests whose ID hashes to another node are proxied there over HTTP
// instead of being served locally. It reuses the same consistent-hash ring as
// in-process sharding — nodes are ring members, peer[0] is this node — so the
// session → node mapping is stable across the fleet as long as every node is
// started with the same -peers list (each with itself first).
//
// This is deliberately a SKELETON of the scale-out path: it forwards, retries
// with jittered backoff, and hedges idempotent requests, but there is no
// membership gossip, no remote health fencing, and no cross-node snapshot
// hand-off — a session created on node A is served by node A until the fleet
// topology says otherwise. Creates always run locally (the creating node owns
// the ID it mints).
type forwarder struct {
	self   string   // base URL of this node (peers[0]), for logging only
	peers  []string // all nodes, index-aligned with ring members
	ring   *shardpkg.Ring
	client *http.Client
	logger *slog.Logger

	// rngMu guards the backoff/hedge jitter source (math/rand.Rand is not
	// goroutine-safe).
	rngMu sync.Mutex
	rng   *rand.Rand

	// perAttempt bounds each proxy attempt; attempts is the total tries for
	// a forwardable request (1 original + retries); hedgeAfter arms the
	// at-most-one hedged duplicate for idempotent requests.
	perAttempt time.Duration
	attempts   int
	hedgeAfter time.Duration

	mForwarded *obs.Counter
	mRetries   *obs.Counter
	mHedges    *obs.Counter
	mErrors    *obs.Counter
}

func newForwarder(peers []string, reg *obs.Registry, logger *slog.Logger) *forwarder {
	f := &forwarder{
		self:       peers[0],
		peers:      peers,
		ring:       shardpkg.NewRing(len(peers), 0),
		client:     &http.Client{},
		logger:     logger,
		rng:        rand.New(rand.NewSource(1)),
		perAttempt: 2 * time.Second,
		attempts:   3,
		hedgeAfter: 500 * time.Millisecond,
	}
	if reg != nil {
		f.mForwarded = reg.Counter("fastd.forward.requests")
		f.mRetries = reg.Counter("fastd.forward.retries")
		f.mHedges = reg.Counter("fastd.forward.hedges")
		f.mErrors = reg.Counter("fastd.forward.errors")
	}
	return f
}

// owner maps a session ID to the peer index that owns it.
func (f *forwarder) owner(sessionID string) int {
	i, err := f.ring.Owner(sessionID)
	if err != nil {
		return 0 // nothing is ever fenced in the skeleton ring
	}
	return i
}

// sessionID extracts the {id} segment from /v1/sessions/{id}/... paths;
// empty means the request is not session-scoped (or is a create) and must be
// handled locally.
func sessionID(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/sessions/")
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest // DELETE /v1/sessions/{id}
}

// middleware routes session-scoped requests: local sessions fall through to
// the daemon's handler, remote ones are proxied to their owning peer.
func (f *forwarder) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sessionID(r.URL.Path)
		if id == "" || r.Header.Get("X-Forwarded-By") != "" {
			// Not session-scoped, or already one forwarding hop deep —
			// serve locally (one hop max: the owner computed from the shared
			// peer list is authoritative, so a second hop means the lists
			// disagree and looping would not fix it).
			next.ServeHTTP(w, r)
			return
		}
		peer := f.owner(id)
		if peer == 0 {
			next.ServeHTTP(w, r)
			return
		}
		f.proxy(w, r, f.peers[peer])
	})
}

// proxy replays the request against the owning peer with per-attempt
// timeouts, jittered backoff between attempts, and — for requests that are
// safe to execute twice — at most one hedged duplicate if the first attempt
// is slow. Hedging is gated on idempotency: GETs and requests carrying an
// Idempotency-Key may race two attempts (the journal dedups), anything else
// must never be in flight twice.
func (f *forwarder) proxy(w http.ResponseWriter, r *http.Request, base string) {
	f.mForwarded.Inc()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	target := strings.TrimSuffix(base, "/") + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	if _, err := url.Parse(target); err != nil {
		httpError(w, http.StatusBadGateway, err)
		return
	}
	idempotent := r.Method == http.MethodGet || r.Header.Get("Idempotency-Key") != ""

	attempt := func(hedged bool) (*http.Response, error) {
		ctx, cancel := context.WithTimeout(r.Context(), f.perAttempt)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, r.Method, target, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header = r.Header.Clone()
		req.Header.Set("X-Forwarded-By", f.self)
		resp, err := f.client.Do(req)
		if err != nil {
			return nil, err
		}
		// Buffer before the per-attempt context is cancelled.
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		resp.Body = io.NopCloser(bytes.NewReader(b))
		if hedged {
			f.mHedges.Inc()
		}
		return resp, nil
	}

	var resp *http.Response
	var lastErr error
	for try := 0; try < f.attempts; try++ {
		if try > 0 {
			f.mRetries.Inc()
			// Decorrelated jitter: base 50ms doubling, ±50% spread — retries
			// from concurrent callers must not re-synchronise on the peer.
			backoff := 50 * time.Millisecond << (try - 1)
			f.rngMu.Lock()
			backoff += time.Duration(f.rng.Int63n(int64(backoff)))
			f.rngMu.Unlock()
			select {
			case <-time.After(backoff):
			case <-r.Context().Done():
				d := http.StatusGatewayTimeout
				httpError(w, d, r.Context().Err())
				return
			}
		}
		if idempotent && try == 0 {
			resp, lastErr = f.attemptWithHedge(attempt)
		} else {
			resp, lastErr = attempt(false)
		}
		if lastErr == nil && resp.StatusCode < http.StatusInternalServerError &&
			resp.StatusCode != http.StatusTooManyRequests {
			break
		}
		// Retry transport errors and transient ladder rungs (429/5xx) only
		// when re-execution is safe; a non-idempotent mutation gets its error
		// surfaced after the first attempt — the CLIENT owns that retry.
		if !idempotent {
			break
		}
		if resp != nil {
			resp.Body.Close()
			resp = nil
		}
	}
	if lastErr != nil {
		f.mErrors.Inc()
		f.logger.Warn("forward failed", "target", target, "error", lastErr.Error())
		httpError(w, http.StatusBadGateway, lastErr)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// attemptWithHedge races the first attempt against one delayed duplicate:
// if the original has not answered within hedgeAfter, a second copy starts
// and whichever finishes first wins. Only called for idempotent requests.
func (f *forwarder) attemptWithHedge(attempt func(hedged bool) (*http.Response, error)) (*http.Response, error) {
	type result struct {
		resp *http.Response
		err  error
	}
	ch := make(chan result, 2)
	go func() {
		resp, err := attempt(false)
		ch <- result{resp, err}
	}()
	var timer *time.Timer
	f.rngMu.Lock()
	hedgeDelay := f.hedgeAfter + time.Duration(f.rng.Int63n(int64(f.hedgeAfter/4+1)))
	f.rngMu.Unlock()
	timer = time.NewTimer(hedgeDelay)
	defer timer.Stop()
	launched := 1
	for {
		select {
		case res := <-ch:
			if res.err == nil || launched == 2 {
				// First success wins; or both attempts have reported and this
				// is the last word.
				if res.err != nil && launched == 2 {
					// Drain the other result if it is already buffered, in
					// case it succeeded.
					select {
					case other := <-ch:
						if other.err == nil {
							return other.resp, nil
						}
					default:
					}
				}
				return res.resp, res.err
			}
			// Original failed before the hedge armed: fall through to the
			// outer retry loop rather than hedging a known-bad attempt.
			return res.resp, res.err
		case <-timer.C:
			if launched == 1 {
				launched = 2
				go func() {
					resp, err := attempt(true)
					ch <- result{resp, err}
				}()
			}
		}
	}
}
