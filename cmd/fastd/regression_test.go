package main

// Regression tests for the REVIEW.md findings against the daemon: the
// MaxSessions bound must hold under concurrent creates (keygen runs for
// seconds outside the registry lock), and healthy-session traffic must not
// reset the daemon-global breaker's consecutive-failure streak.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/serve"
)

// TestSessionLimitUnderConcurrentCreates: N concurrent creates that all pass
// a check-then-act limit test would grow the registry past MaxSessions while
// keygen runs unlocked. The slot reservation must admit exactly MaxSessions
// and 429 the rest, leaving no reservation behind.
func TestSessionLimitUnderConcurrentCreates(t *testing.T) {
	const limit = 2
	d, ts := newTestDaemon(t, daemonConfig{Workers: 4, QueueDepth: 16, MaxSessions: limit})

	body, err := json.Marshal(testSessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
			if err != nil {
				return // transport error recorded as status 0
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	var created, refused int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			created++
		case http.StatusTooManyRequests:
			refused++
		default:
			t.Errorf("create %d: status %d, want 200 or 429", i, st)
		}
	}
	if created != limit || refused != n-limit {
		t.Fatalf("created %d / refused %d, want %d / %d", created, refused, limit, n-limit)
	}
	registered := int(d.resident.Load())
	if registered != limit {
		t.Fatalf("registry holds %d sessions, want %d", registered, limit)
	}
	if occ := int(d.occupancy.Load()); occ != limit {
		t.Fatalf("occupancy %d after creates settled, want %d: reservations leaked", occ, limit)
	}

	// Failed creates must have released their reservations: deleting one
	// session frees exactly one slot for a new create.
	var sr sessionResponse
	for id := range func() map[string]*evalShard {
		d.mu.Lock()
		defer d.mu.Unlock()
		m := make(map[string]*evalShard, len(d.owners))
		for k, v := range d.owners {
			m[k] = v
		}
		return m
	}() {
		status, raw := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil, nil, nil)
		if status != http.StatusNoContent {
			t.Fatalf("delete %s: status %d: %s", id, status, raw)
		}
		break
	}
	status, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", nil, testSessionRequest(), &sr)
	if status != http.StatusOK {
		t.Fatalf("create after delete: status %d: %s", status, raw)
	}
}

// TestHealthyTrafficDoesNotResetBreakerStreak: the breaker is daemon-global
// and consecutive-failure based; evals on sessions without a fault plan must
// record nothing, or any interleaved healthy traffic masks a sustained fault
// storm on another session and the breaker never trips.
func TestHealthyTrafficDoesNotResetBreakerStreak(t *testing.T) {
	d, err := newDaemon(daemonConfig{BreakerThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.drain(context.Background()) })

	fctx, err := fast.NewContext(fast.ContextConfig{LogN: 9, Levels: 2, LogScale: 36, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	healthy := &session{id: "h", ctx: fctx}
	if healthy.ctx.FaultPlanActive() {
		t.Fatal("test session unexpectedly has a fault plan")
	}

	sh := d.shards[0]
	// One fault report shy of the threshold...
	sh.breaker.RecordFailure()
	// ...then a burst of healthy-session evals interleaves...
	for i := 0; i < 5; i++ {
		sh.recordFaultHealth(healthy)
	}
	// ...and the storm's next fault report must still reach the threshold.
	sh.breaker.RecordFailure()
	if st := sh.breaker.State(); st != serve.BreakerOpen {
		t.Fatalf("breaker state = %v, want open: healthy traffic reset the failure streak", st)
	}
}
