package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/fastfhe/fast/internal/fault"
)

// readyzSessions fetches /readyz and returns its status plus the sessions
// block — the occupancy/lifecycle surface these tests assert on.
func readyzSessions(t *testing.T, base string) (int, sessionReadiness) {
	t.Helper()
	var r struct {
		Ready    bool             `json:"ready"`
		Sessions sessionReadiness `json:"sessions"`
	}
	status, raw := doJSON(t, http.MethodGet, base+"/readyz", nil, nil, nil)
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("readyz decode %q: %v", raw, err)
	}
	return status, r.Sessions
}

func abs2(v complex128) float64 { return math.Hypot(real(v), imag(v)) }

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func readAll(t *testing.T, r io.Reader) []byte {
	t.Helper()
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestChaosCrashRestartDurability is the in-process kill-and-restart drill:
// daemon A write-ahead persists a session, is abandoned WITHOUT drain (the
// process-death analogue — nothing between the fsync'd snapshot and the next
// daemon), and daemon B on the same state dir must lazily restore the session
// and decrypt a pre-crash ciphertext byte-for-byte identically to the
// fault-free reference A produced.
func TestChaosCrashRestartDurability(t *testing.T) {
	dir := t.TempDir()
	_, tsA := newTestDaemon(t, daemonConfig{StateDir: dir})

	sr := createSession(t, tsA.URL, testSessionRequest())
	vals := make([]complex128, sr.Slots)
	for i := range vals {
		vals[i] = complex(0.25*float64(i%7), -0.125*float64(i%5))
	}
	ct := encryptValues(t, tsA.URL, sr.ID, vals)
	refStatus, refBody := doJSON(t, http.MethodPost, tsA.URL+"/v1/sessions/"+sr.ID+"/decrypt", nil,
		decryptRequest{Ciphertext: ct.Ciphertext}, nil)
	if refStatus != http.StatusOK {
		t.Fatalf("reference decrypt: status %d: %s", refStatus, refBody)
	}

	// "Crash": no drain, no shutdown hook — daemon B sees only what A made
	// durable before each response it released.
	_, tsB := newTestDaemon(t, daemonConfig{StateDir: dir})
	gotStatus, gotBody := doJSON(t, http.MethodPost, tsB.URL+"/v1/sessions/"+sr.ID+"/decrypt", nil,
		decryptRequest{Ciphertext: ct.Ciphertext}, nil)
	if gotStatus != http.StatusOK {
		t.Fatalf("post-restart decrypt: status %d: %s", gotStatus, gotBody)
	}
	if !bytes.Equal(refBody, gotBody) {
		t.Fatalf("restored session decrypts differently:\n pre-crash: %s\npost-crash: %s", refBody, gotBody)
	}

	// The restored session must also keep working forward: fresh encrypts on
	// the reseeded epoch round-trip, and the lifecycle counters report the
	// restore.
	ct2 := encryptValues(t, tsB.URL, sr.ID, vals)
	got := decryptValues(t, tsB.URL, sr.ID, ct2.Ciphertext)
	for i := range vals {
		if d := got[i] - vals[i]; abs2(d) > 1e-3 {
			t.Fatalf("slot %d after restart: got %v, want %v", i, got[i], vals[i])
		}
	}
	if _, sess := readyzSessions(t, tsB.URL); sess.Restored != 1 || sess.Resident != 1 {
		t.Fatalf("readyz after restore: %+v, want restored=1 resident=1", sess)
	}
}

// TestChaosIdempotentReplayAcrossRestart: a completed idempotent request is
// journaled (fsync'd) before its response is released, so a client retrying
// the same Idempotency-Key after a crash gets the recorded response bytes
// back — exactly once end to end, with the replay marked.
func TestChaosIdempotentReplayAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, tsA := newTestDaemon(t, daemonConfig{StateDir: dir})

	sr := createSession(t, tsA.URL, testSessionRequest())
	vals := make([]complex128, sr.Slots)
	for i := range vals {
		vals[i] = complex(0.5, 0.25)
	}
	ct := encryptValues(t, tsA.URL, sr.ID, vals)
	prog := evalRequest{
		Inputs:  map[string]string{"x": ct.Ciphertext},
		Program: []progOp{{Op: "addconst", A: "x", Value: 0.125, Out: "out"}},
		Output:  "out",
	}
	hdr := map[string]string{"Idempotency-Key": "req-42"}
	url := "/v1/sessions/" + sr.ID + "/eval"
	st1, body1 := doJSON(t, http.MethodPost, tsA.URL+url, hdr, prog, nil)
	if st1 != http.StatusOK {
		t.Fatalf("eval: status %d: %s", st1, body1)
	}

	_, tsB := newTestDaemon(t, daemonConfig{StateDir: dir})
	req, _ := http.NewRequest(http.MethodPost, tsB.URL+url, bytes.NewReader(mustJSON(t, prog)))
	req.Header.Set("Idempotency-Key", "req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body2 := readAll(t, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed eval: status %d: %s", resp.StatusCode, body2)
	}
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("post-restart retry was re-executed, not replayed")
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("replayed response differs from the original")
	}
}

// TestIdempotentReplaySameProcess: duplicate keys within one daemon replay
// the recorded outcome without re-executing, and a key-less request bypasses
// the table.
func TestIdempotentReplaySameProcess(t *testing.T) {
	d, ts := newTestDaemon(t, daemonConfig{})

	sr := createSession(t, ts.URL, testSessionRequest())
	vals := make([]complex128, sr.Slots)
	for i := range vals {
		vals[i] = complex(0.1*float64(i%3), 0)
	}
	ct := encryptValues(t, ts.URL, sr.ID, vals)
	prog := evalRequest{
		Inputs:  map[string]string{"x": ct.Ciphertext},
		Program: []progOp{{Op: "rotate", A: "x", R: 1, Out: "out"}},
		Output:  "out",
	}
	url := ts.URL + "/v1/sessions/" + sr.ID + "/eval"
	hdr := map[string]string{"Idempotency-Key": "k1"}
	_, body1 := doJSON(t, http.MethodPost, url, hdr, prog, nil)
	_, body2 := doJSON(t, http.MethodPost, url, hdr, prog, nil)
	if !bytes.Equal(body1, body2) {
		t.Fatal("duplicate idempotent request returned a different response")
	}
	if got := d.mIdemReplays.Value(); got != 1 {
		t.Fatalf("fastd.idem.replays = %d, want 1", got)
	}
	// A different key re-executes (the batcher's encoding is deterministic
	// for this program, so only the counter distinguishes the paths).
	doJSON(t, http.MethodPost, url, map[string]string{"Idempotency-Key": "k2"}, prog, nil)
	if got := d.mIdemReplays.Value(); got != 1 {
		t.Fatalf("fastd.idem.replays after distinct key = %d, want 1", got)
	}
}

// TestChaosCorruptSnapshotSkipped flips one byte in a persisted snapshot and
// asserts the recovery contract: the session is refused with the typed
// corrupt-snapshot error (410, never a wrong decrypt), the corruption is
// counted, and the daemon keeps serving fresh sessions.
func TestChaosCorruptSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	_, tsA := newTestDaemon(t, daemonConfig{StateDir: dir})
	sr := createSession(t, tsA.URL, testSessionRequest())

	path := filepath.Join(dir, sr.ID+".snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, tsB := newTestDaemon(t, daemonConfig{StateDir: dir})
	status, body := doJSON(t, http.MethodPost, tsB.URL+"/v1/sessions/"+sr.ID+"/encrypt", nil,
		encryptRequest{Values: fromComplex(make([]complex128, 4))}, nil)
	if status != http.StatusGone {
		t.Fatalf("request against corrupt snapshot: status %d (%s), want 410", status, body)
	}
	if _, sess := readyzSessions(t, tsB.URL); sess.Corrupt != 1 {
		t.Fatalf("readyz corrupt = %d, want 1", sess.Corrupt)
	}
	// The daemon itself stays healthy.
	createSession(t, tsB.URL, testSessionRequest())
}

// TestSessionEvictionRestoreLRU drives the resident bound: with
// MaxResident=1 the older session is snapshotted out (dropping its compiled
// plans), shows up as persisted on /readyz, and faults back in on its next
// request with state intact.
func TestSessionEvictionRestoreLRU(t *testing.T) {
	dir := t.TempDir()
	d, ts := newTestDaemon(t, daemonConfig{StateDir: dir, MaxResident: 1, MaxSessions: 8})

	s1 := createSession(t, ts.URL, testSessionRequest())
	vals := make([]complex128, s1.Slots)
	for i := range vals {
		vals[i] = complex(float64(i%4)*0.2, 0.1)
	}
	ct := encryptValues(t, ts.URL, s1.ID, vals)
	// Compile a plan on s1 so eviction has cache entries to drop.
	prog := evalRequest{
		Inputs:  map[string]string{"x": ct.Ciphertext},
		Program: []progOp{{Op: "addconst", A: "x", Value: 1, Out: "out"}},
		Output:  "out",
	}
	if st, body := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+s1.ID+"/eval", nil, prog, nil); st != http.StatusOK {
		t.Fatalf("eval on s1: status %d: %s", st, body)
	}

	createSession(t, ts.URL, testSessionRequest()) // overflows MaxResident=1, evicts s1
	_, sess := readyzSessions(t, ts.URL)
	if sess.Resident != 1 || sess.Persisted != 1 || sess.Evicted != 1 {
		t.Fatalf("after overflow: %+v, want resident=1 persisted=1 evicted=1", sess)
	}
	if got := d.mPlanEvicted.Value(); got == 0 {
		t.Fatal("serve.plan_cache.evicted did not count the dropped plans")
	}

	// s1 faults back in transparently and still decrypts its ciphertext.
	got := decryptValues(t, ts.URL, s1.ID, ct.Ciphertext)
	for i := range vals {
		if d := got[i] - vals[i]; abs2(d) > 1e-3 {
			t.Fatalf("slot %d after evict+restore: got %v, want %v", i, got[i], vals[i])
		}
	}
	if _, sess := readyzSessions(t, ts.URL); sess.Restored != 1 {
		t.Fatalf("readyz restored = %d, want 1", sess.Restored)
	}
}

// TestReadyzSessionOccupancy is the satellite regression test: /readyz
// reports registry occupancy against MaxSessions and flips to 503 exactly
// when a session create would be refused.
func TestReadyzSessionOccupancy(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{MaxSessions: 2})

	if status, sess := readyzSessions(t, ts.URL); status != http.StatusOK || sess.Resident != 0 || sess.Max != 2 {
		t.Fatalf("empty daemon: status %d sessions %+v", status, sess)
	}
	createSession(t, ts.URL, testSessionRequest())
	if status, _ := readyzSessions(t, ts.URL); status != http.StatusOK {
		t.Fatalf("one slot free: readyz %d, want 200", status)
	}
	s2 := createSession(t, ts.URL, testSessionRequest())
	status, sess := readyzSessions(t, ts.URL)
	if status != http.StatusServiceUnavailable || sess.Resident != 2 {
		t.Fatalf("full registry: status %d sessions %+v, want 503 resident=2", status, sess)
	}
	// The refusal /readyz predicts:
	if st, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", nil, testSessionRequest(), nil); st != http.StatusTooManyRequests {
		t.Fatalf("create on full registry: status %d, want 429", st)
	}
	if st, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+s2.ID, nil, nil, nil); st != http.StatusNoContent {
		t.Fatalf("delete: status %d", st)
	}
	if status, _ := readyzSessions(t, ts.URL); status != http.StatusOK {
		t.Fatalf("after delete: readyz %d, want 200", status)
	}
}

// TestSessionTTLEviction: an idle session is swept to disk after SessionTTL
// and faults back in on its next request.
func TestSessionTTLEviction(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestDaemon(t, daemonConfig{StateDir: dir, SessionTTL: 50 * time.Millisecond})

	sr := createSession(t, ts.URL, testSessionRequest())
	vals := []complex128{1, 2i, -3, 0.5}
	full := make([]complex128, sr.Slots)
	copy(full, vals)
	ct := encryptValues(t, ts.URL, sr.ID, full)

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, sess := readyzSessions(t, ts.URL)
		if sess.Resident == 0 && sess.Persisted == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not TTL-evicted: %+v", sess)
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := decryptValues(t, ts.URL, sr.ID, ct.Ciphertext)
	for i := range vals {
		if d := got[i] - vals[i]; abs2(d) > 1e-3 {
			t.Fatalf("slot %d after TTL evict+restore: got %v, want %v", i, got[i], vals[i])
		}
	}
}

// TestChaosDiskWriteFaultDegrades: with injected disk-write failures the
// daemon degrades instead of erroring — sessions are served resident-only,
// creates still succeed, and the failure is counted.
func TestChaosDiskWriteFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	d, ts := newTestDaemon(t, daemonConfig{
		StateDir:    dir,
		StoreFaults: fault.Plan{DiskWrite: 1, Seed: 7},
	})
	sr := createSession(t, ts.URL, testSessionRequest())
	if _, err := os.Stat(filepath.Join(dir, sr.ID+".snap")); !os.IsNotExist(err) {
		t.Fatalf("snapshot written despite injected faults (err=%v)", err)
	}
	if d.store.mWriteFailures.Value() == 0 {
		t.Fatal("fastd.store.write_failures did not count the degraded save")
	}
	// The session still serves (resident-only).
	encryptValues(t, ts.URL, sr.ID, make([]complex128, sr.Slots))
}
