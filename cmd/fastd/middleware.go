package main

import (
	"log/slog"
	"net/http"
	"time"

	"github.com/fastfhe/fast/internal/obs"
)

// Request-scoped observability middleware: every request through the daemon's
// API surface gets an ID (client-provided X-Request-Id, W3C traceparent
// trace-id, or freshly assigned), an entry in the in-flight request table, an
// HTTP span on the shared Chrome-trace timeline and one JSON access-log line
// on completion. The ID travels down through admission, batching and the
// CKKS kernels via the request context, so all of those surfaces join on it.

// tracePIDServe is the Chrome-trace process id of the serving layer's HTTP
// spans (the ckks evaluator uses pid 1, the cycle simulator pid 2).
const tracePIDServe = 3

// statusRecorder captures the status code and body size the handler wrote,
// for the access log and the HTTP span.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// sanitizeRequestID accepts a client-provided request ID only if it is short
// and printable-safe (hex, alphanumerics, '.', '_', '-'), so hostile header
// values cannot smuggle log-breaking or header-splitting bytes through the
// echo path. Anything else is discarded and a fresh ID assigned.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			c == '.' || c == '_' || c == '-'
		if !ok {
			return ""
		}
	}
	return id
}

// withObservability wraps the daemon's mux with the request-correlation
// layer. It runs outermost so even routing failures (404s) are identified,
// tabled and logged.
func (d *daemon) withObservability(next http.Handler) http.Handler {
	tracer := d.observer.Tracer()
	tracer.SetProcessName(tracePIDServe, "fastd http")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()

		rid := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		tp, hasTP := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if rid == "" {
			if hasTP {
				rid = tp.TraceID
			} else {
				rid = obs.NewRequestID()
			}
		}
		traceID := ""
		if hasTP {
			traceID = tp.TraceID
		}

		req := &obs.Request{ID: rid, TraceID: traceID, Op: r.Method + " " + r.URL.Path, Start: start}
		req.SetPhase(obs.PhaseReceived)
		d.requests.Begin(req)
		defer d.requests.End(req)

		// Echo the correlation identity before the handler writes: the client
		// can join its logs against ours even on rejected requests. An inbound
		// traceparent is round-tripped with the same trace-id and a fresh
		// span-id (this hop's), flags preserved.
		w.Header().Set("X-Request-Id", rid)
		if hasTP {
			tp.SpanID = obs.NewSpanID()
			w.Header().Set("traceparent", tp.String())
		}

		sr := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sr, r.WithContext(obs.WithRequest(r.Context(), req)))
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		elapsed := time.Since(start)

		tracer.CompleteSince(req.Op, "http", tracePIDServe, 0, start, map[string]any{
			"request_id": rid,
			"status":     sr.status,
		})
		d.logRequest(r, req, sr, elapsed)
	})
}

// logRequest emits the one access-log record per request, plus a warn-level
// slow-request record above the configured threshold. Every field is a join
// key against another surface: id/trace_id against the client and the Chrome
// trace, fingerprint and batch against /debug/plans, outcome against the
// degradation-ladder counters.
func (d *daemon) logRequest(r *http.Request, req *obs.Request, sr *statusRecorder, elapsed time.Duration) {
	outcome := req.Outcome()
	if outcome == "" {
		if sr.status < 400 {
			outcome = "ok"
		} else {
			outcome = "error"
		}
	}
	attrs := []slog.Attr{
		slog.String("id", req.ID),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sr.status),
		slog.String("outcome", outcome),
		slog.Float64("dur_ms", float64(elapsed)/float64(time.Millisecond)),
		slog.Int64("bytes", sr.bytes),
	}
	if req.TraceID != "" {
		attrs = append(attrs, slog.String("trace_id", req.TraceID))
	}
	if s := req.Session(); s != "" {
		attrs = append(attrs, slog.String("session", s))
	}
	if u := req.Units(); u > 0 {
		attrs = append(attrs, slog.Float64("units", u))
	}
	if qw := req.QueueWait(); qw > 0 {
		attrs = append(attrs, slog.Float64("queue_wait_ms", float64(qw)/float64(time.Millisecond)))
	}
	if b := req.Batch(); b != 0 {
		attrs = append(attrs, slog.Uint64("batch", b))
	}
	if fp := req.Fingerprint(); fp != "" {
		attrs = append(attrs, slog.String("fingerprint", fp))
	}
	ctx := r.Context()
	d.logger.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
	if d.cfg.SlowRequest > 0 && elapsed >= d.cfg.SlowRequest {
		attrs = append(attrs, slog.Float64("threshold_ms",
			float64(d.cfg.SlowRequest)/float64(time.Millisecond)))
		d.logger.LogAttrs(ctx, slog.LevelWarn, "slow request", attrs...)
	}
}
