package main

import (
	"bytes"
	"container/list"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/serve"
	shardpkg "github.com/fastfhe/fast/internal/shard"
)

// daemonConfig sizes the serving layer.
type daemonConfig struct {
	// Shards is the number of failure-isolated serving lanes behind the one
	// listener (default 1 — the pre-sharding topology). Each shard owns its
	// own admission queue, worker pool, circuit breaker and resident-session
	// LRU; sessions are pinned to shards by consistent hashing of the ID.
	Shards int
	// Workers is the evaluator pool size PER SHARD.
	Workers    int
	QueueDepth int
	// BreakerThreshold is the number of consecutive fault-bearing requests
	// that open a shard's circuit breaker; BreakerCooldown the open interval
	// before the half-open probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxSessions bounds the session keyspace count PROCESS-WIDE (each
	// session owns a full key set — memory, not descriptors, is the scarce
	// resource). The bound is enforced with one shared atomic reservation, so
	// N shards cannot collectively overshoot it. With a state dir the bound
	// covers resident AND persisted sessions.
	MaxSessions int
	// StateDir enables crash-safe session durability: every session is
	// write-ahead snapshotted there on create (atomic rename, fsync'd),
	// restored lazily after a restart, and evicted to disk under resident
	// pressure. Empty disables persistence (sessions die with the process).
	// The snapshot store is shared by all shards — it is also the failover
	// channel: a fenced shard's sessions restore on the survivors from here.
	StateDir string
	// MaxResident bounds the sessions held in memory when StateDir is set
	// (0 = MaxSessions), split evenly across shards. Past a shard's slice the
	// least-recently-used session is snapshotted (if dirty) and released; the
	// next request faults it back in.
	MaxResident int
	// SessionTTL evicts sessions idle longer than this to disk (0 disables;
	// requires StateDir).
	SessionTTL time.Duration
	// IdemCap bounds each session's idempotency dedup table (0 = 512).
	IdemCap int
	// EvkBudget bounds the process-wide shared evaluation-key tier in bytes
	// (0 = 256 MiB; negative disables retention but keeps accounting).
	EvkBudget int64
	// ProbeInterval / ProbeTimeout / FenceThreshold drive the shard
	// supervisor: every ProbeInterval each live shard must execute a no-op
	// task within ProbeTimeout; FenceThreshold consecutive failures fence the
	// shard (its sessions fail over to the survivors). Probing only runs with
	// Shards >= 2 — with one shard there is nowhere to fail over to.
	ProbeInterval  time.Duration
	ProbeTimeout   time.Duration
	FenceThreshold int
	// StoreFaults optionally injects disk-write failures into the persistence
	// layer (chaos testing of the retry-then-degrade path).
	StoreFaults fault.Plan
	// Sequential disables cross-request micro-batching: each eval executes
	// straight-line on its own worker (the pre-planner behavior). Used as the
	// benchmark baseline and as an operational escape hatch.
	Sequential bool
	Observer   *fast.Observer
	// Logger receives the JSON access log (one record per request) plus
	// slow-request warnings. Nil discards all logging.
	Logger *slog.Logger
	// SlowRequest is the duration above which a completed request additionally
	// emits a warn-level "slow request" record (0 disables).
	SlowRequest time.Duration
	// Peers lists sibling fastd base URLs for the multi-node forwarding
	// skeleton (empty = single node; see forward.go).
	Peers []string
}

func (c daemonConfig) withDefaults() daemonConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.MaxResident <= 0 || c.MaxResident > c.MaxSessions {
		c.MaxResident = c.MaxSessions
	}
	if c.IdemCap <= 0 {
		c.IdemCap = idemTableCap
	}
	if c.EvkBudget == 0 {
		c.EvkBudget = 256 << 20
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.FenceThreshold <= 0 {
		c.FenceThreshold = 5
	}
	if c.Observer == nil {
		c.Observer = fast.NewObserver()
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogger(io.Discard, slog.LevelInfo)
	}
	return c
}

// session is one client keyspace: a fast.Context plus the bookkeeping the
// admission layer needs (cost parameters, fault-recovery watermark) and the
// durability layer adds (snapshot metadata, idempotency table, LRU position).
type session struct {
	id    string
	ctx   *fast.Context
	cm    costmodel.Params
	plans *planCache // compiled-plan LRU keyed by Plan fingerprint
	meta  fast.SessionMeta
	idem  *idemTable // nil only for registry entries tests build by hand

	// lruEl and lastUsed are guarded by the owning shard's mu (they move
	// with that shard's LRU list); both stay zero when persistence is
	// disabled.
	lruEl    *list.Element
	lastUsed time.Time

	mu           sync.Mutex
	lastRecovery int  // Retries+Timeouts+Refetches watermark for breaker deltas
	persisted    bool // on-disk snapshot is current (guards re-save on evict)
}

// faultRecoveryDelta returns the growth of the session's fault-recovery
// counters since the previous call — the breaker's health signal.
func (s *session) faultRecoveryDelta() int {
	st := s.ctx.FaultStats()
	total := st.Retries + st.Timeouts + st.Refetches
	s.mu.Lock()
	defer s.mu.Unlock()
	delta := total - s.lastRecovery
	s.lastRecovery = total
	return delta
}

// daemon is the fastd HTTP server: N failure-isolated shards behind one
// listener, routed by a consistent-hash ring over session IDs, plus the
// global pieces — the snapshot store, the shared evk tier, the supervisor
// that fences failed shards, and the process-wide session budget.
type daemon struct {
	cfg      daemonConfig
	shards   []*evalShard
	ring     *shardpkg.Ring
	sup      *shardpkg.Supervisor
	evk      *fast.EvkCache
	fwd      *forwarder // nil without -peers
	observer *fast.Observer
	requests *obs.RequestTable
	logger   *slog.Logger

	store *sessionStore // nil when persistence is disabled

	// mu guards the GLOBAL registry state: sessions on disk, tombstones, and
	// the owner table mapping resident session IDs to their current shard.
	// Per-shard registries live behind each evalShard.mu (always acquired
	// AFTER d.mu when both are needed).
	mu        sync.Mutex
	persisted map[string]struct{}   // on disk only (evicted or not yet restored)
	corrupt   map[string]struct{}   // snapshot failed integrity validation; skipped
	owners    map[string]*evalShard // resident session -> shard currently holding it

	// occupancy is the shard-global MaxSessions reservation: resident +
	// persisted + in-flight creates, maintained with one atomic so N shards
	// admitting concurrently cannot collectively overshoot the bound.
	occupancy atomic.Int64
	resident  atomic.Int64
	nextID    atomic.Uint64
	draining  atomic.Bool

	sweepStop chan struct{}
	sweepDone chan struct{}
	stopOnce  sync.Once

	mRequests      *obs.Counter
	mFaultTrips    *obs.Counter
	mSessionCount  *obs.Gauge
	mPlanEvicted   *obs.Counter
	mPlanHits      *obs.Counter
	mPlanMisses    *obs.Counter
	mResident      *obs.Gauge
	mPersisted     *obs.Gauge
	mRestored      *obs.Counter
	mEvicted       *obs.Counter
	mCorrupt       *obs.Counter
	mIdemReplays   *obs.Counter
	mIdemRecorded  *obs.Counter
	mShardMigrated *obs.Counter
	mShardLost     *obs.Counter
	mShardDown     *obs.Counter
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Observer.Registry()
	d := &daemon{
		cfg:       cfg,
		observer:  cfg.Observer,
		requests:  obs.NewRequestTable(reg),
		logger:    cfg.Logger,
		persisted: map[string]struct{}{},
		corrupt:   map[string]struct{}{},
		owners:    map[string]*evalShard{},
		ring:      shardpkg.NewRing(cfg.Shards, 0),
		evk:       fast.NewEvkCache(cfg.EvkBudget, cfg.Observer),
	}
	if reg != nil {
		d.mRequests = reg.Counter("fastd.requests")
		d.mFaultTrips = reg.Counter("fastd.breaker_fault_reports")
		d.mSessionCount = reg.Gauge("fastd.sessions")
		d.mPlanHits = reg.Counter("serve.plan_cache.hits")
		d.mPlanMisses = reg.Counter("serve.plan_cache.misses")
		d.mPlanEvicted = reg.Counter("serve.plan_cache.evicted")
		d.mResident = reg.Gauge("sessions.resident")
		d.mPersisted = reg.Gauge("sessions.persisted")
		d.mRestored = reg.Counter("sessions.restored")
		d.mEvicted = reg.Counter("sessions.evicted")
		d.mCorrupt = reg.Counter("sessions.corrupt")
		d.mIdemReplays = reg.Counter("fastd.idem.replays")
		d.mIdemRecorded = reg.Counter("fastd.idem.recorded")
		d.mShardMigrated = reg.Counter("fastd.shard.sessions_migrated")
		d.mShardLost = reg.Counter("fastd.shard.sessions_lost")
		d.mShardDown = reg.Counter("fastd.shard.down_refusals")
	}
	residentSlices := splitResident(cfg.MaxResident, cfg.Shards)
	d.shards = make([]*evalShard, cfg.Shards)
	for i := range d.shards {
		d.shards[i] = newEvalShard(d, i, residentSlices[i])
	}
	// The supervisor health-checks shards through their own admission path
	// and fences the wedged ones. With a single shard there is no survivor to
	// fail over to, so probing is disabled (Kill still works for tests).
	var probe func(context.Context, int) error
	if cfg.Shards > 1 {
		probe = d.probeShard
	}
	d.sup = shardpkg.NewSupervisor(d.ring, shardpkg.SupervisorConfig{
		Shards:       cfg.Shards,
		Probe:        probe,
		Interval:     cfg.ProbeInterval,
		ProbeTimeout: cfg.ProbeTimeout,
		Threshold:    cfg.FenceThreshold,
		OnFence:      d.onFence,
		OnUnfence:    d.onUnfence,
		Reg:          reg,
	})
	if len(cfg.Peers) > 0 {
		d.fwd = newForwarder(cfg.Peers, reg, d.logger)
	}
	if cfg.StateDir != "" {
		store, err := openSessionStore(cfg.StateDir, fault.NewInjector(cfg.StoreFaults), reg, d.logger)
		if err != nil {
			return nil, err
		}
		d.store = store
		// Persisted sessions are NOT restored here — startup stays O(files)
		// cheap and the first request for each session faults it in (decode,
		// checksum, parameter recompile, key deserialisation). Only the ID
		// space is recovered eagerly, so new creates never collide with
		// pre-crash sessions.
		ids, err := store.scan()
		if err != nil {
			return nil, fmt.Errorf("fastd: scan state dir: %w", err)
		}
		for _, id := range ids {
			d.persisted[id] = struct{}{}
			if n, err := strconv.ParseUint(strings.TrimPrefix(id, "s"), 10, 64); err == nil && n > d.nextID.Load() {
				d.nextID.Store(n)
			}
		}
		d.occupancy.Store(int64(len(ids)))
		d.updateOccupancy()
		if len(ids) > 0 {
			d.logger.Info("session state recovered", "dir", cfg.StateDir, "persisted", len(ids))
		}
		if cfg.SessionTTL > 0 {
			d.sweepStop = make(chan struct{})
			d.sweepDone = make(chan struct{})
			go d.sweepIdle()
		}
	}
	return d, nil
}

// route resolves a session ID to its ring-assigned live shard.
func (d *daemon) route(id string) (*evalShard, error) {
	i, err := d.ring.Owner(id)
	if err != nil {
		d.mShardDown.Inc()
		return nil, err
	}
	return d.shards[i], nil
}

// drain gracefully stops the supervisor, every shard's admission layer
// (bounded by ctx) and the idle sweeper. No final mass-snapshot is needed:
// durability is write-ahead, so whatever is on disk at any instant —
// graceful drain or SIGKILL — is already a consistent recovery image.
func (d *daemon) drain(ctx context.Context) error {
	d.draining.Store(true)
	d.stopOnce.Do(func() {
		d.sup.Stop()
		if d.sweepStop != nil {
			close(d.sweepStop)
			<-d.sweepDone
		}
	})
	var firstErr error
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, sh := range d.shards {
		wg.Add(1)
		go func(sh *evalShard) {
			defer wg.Done()
			if err := sh.srv.Drain(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(sh)
	}
	wg.Wait()
	return firstErr
}

// ---- HTTP surface ----------------------------------------------------------

// handler mounts the daemon's endpoints plus the observer's observability
// surface (/metrics, /debug/..., /snapshot.json, /trace.json), all wrapped in
// the request-correlation middleware so every response carries X-Request-Id
// and every request is tabled and access-logged.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("POST /v1/sessions", d.handleCreateSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", d.handleDeleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/encrypt", d.handleEncrypt)
	mux.HandleFunc("POST /v1/sessions/{id}/decrypt", d.handleDecrypt)
	mux.HandleFunc("POST /v1/sessions/{id}/eval", d.handleEval)
	mux.HandleFunc("POST /debug/shards/{id}/kill", d.handleKillShard)

	ob := d.observer.Handler()
	for _, p := range []string{"/metrics", "/debug/", "/snapshot.json", "/trace.json", "/trace.txt"} {
		mux.Handle(p, ob)
	}
	// Most-specific-pattern-wins: these shadow the observer's /debug/ catch-all.
	mux.Handle("GET /debug/requests", d.requests.Handler())
	mux.HandleFunc("GET /debug/plans", d.handlePlans)
	var h http.Handler = mux
	if d.fwd != nil {
		h = d.fwd.middleware(h)
	}
	return d.withObservability(h)
}

// handlePlans serves the observer's retained plan-execution records (the ring
// recordBatch fills), oldest first — the join surface between request IDs,
// batch sequence numbers and planner decisions.
func (d *daemon) handlePlans(w http.ResponseWriter, _ *http.Request) {
	recs := d.observer.PlanRecords()
	if recs == nil {
		recs = []fast.PlanRecord{}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"count": len(recs), "plans": recs})
}

func (d *daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// sessionReadiness is /readyz's view of the session registry: occupancy
// against both bounds plus the durability lifecycle counters.
type sessionReadiness struct {
	Resident    int    `json:"resident"`
	Persisted   int    `json:"persisted"`
	Max         int    `json:"max"`
	MaxResident int    `json:"max_resident"`
	Restored    uint64 `json:"restored"`
	Evicted     uint64 `json:"evicted"`
	Corrupt     uint64 `json:"corrupt"`
}

// rollupBreaker summarises per-shard breaker states for the global view: the
// daemon can serve key-switch traffic as long as one live shard's breaker is
// not open, so the rollup reports the most-available state across live
// shards ("closed" beats "half-open" beats "open").
func (d *daemon) rollupBreaker() string {
	best := serve.BreakerOpen
	seen := false
	for i, sh := range d.shards {
		if d.ring.Fenced(i) {
			continue
		}
		seen = true
		switch sh.breaker.State() {
		case serve.BreakerClosed:
			return serve.BreakerClosed.String()
		case serve.BreakerHalfOpen:
			best = serve.BreakerHalfOpen
		}
	}
	if !seen {
		return serve.BreakerOpen.String()
	}
	return best.String()
}

func (d *daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	type readiness struct {
		Ready      bool               `json:"ready"`
		Draining   bool               `json:"draining"`
		Breaker    string             `json:"breaker"`
		Queue      int                `json:"queue_depth"`
		Inflight   int                `json:"inflight_requests"`
		Shards     []shardReadiness   `json:"shards"`
		LiveShards int                `json:"live_shards"`
		Sessions   sessionReadiness   `json:"sessions"`
		Evk        evkReadiness       `json:"evk"`
		Latency    map[string]float64 `json:"latency"`
	}
	// Quantiles are estimated from the end-to-end log2-bucket latency
	// histogram (rank interpolation, within 2x of exact) — the same numbers
	// the serve.latency.p*_ns gauges export on /metrics.
	lat := d.observer.Registry().Histogram("serve.latency_ns").Snapshot()
	d.mu.Lock()
	persisted := len(d.persisted)
	d.mu.Unlock()
	occupancy := int(d.occupancy.Load())
	shards := d.shardReadiness()
	queue := 0
	for _, s := range shards {
		queue += s.Queue
	}
	sess := sessionReadiness{
		Resident:    int(d.resident.Load()),
		Persisted:   persisted,
		Max:         d.cfg.MaxSessions,
		MaxResident: d.cfg.MaxResident,
		Restored:    d.mRestored.Value(),
		Evicted:     d.mEvicted.Value(),
		Corrupt:     d.mCorrupt.Value(),
	}
	r := readiness{
		Draining:   d.draining.Load(),
		Breaker:    d.rollupBreaker(),
		Queue:      queue,
		Inflight:   d.requests.Len(),
		Shards:     shards,
		LiveShards: d.ring.Live(),
		Sessions:   sess,
		Evk:        d.evkReadiness(),
		Latency: map[string]float64{
			"serve.latency.p50_ns": lat.Quantile(0.50),
			"serve.latency.p90_ns": lat.Quantile(0.90),
			"serve.latency.p99_ns": lat.Quantile(0.99),
		},
	}
	// Readiness flips when the NEXT unit of work would be refused everywhere:
	// draining, a full session budget (the next create 429s), every shard
	// fenced, or every live shard's breaker open. A fenced shard with live
	// survivors keeps the daemon ready — that is the point of failover: its
	// sessions are being served elsewhere, capacity degraded, availability
	// did not.
	r.Ready = !r.Draining && r.Breaker != serve.BreakerOpen.String() &&
		r.LiveShards > 0 && occupancy < d.cfg.MaxSessions
	if !r.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, r)
}

// sessionRequest mirrors fast.ContextConfig over the wire, plus an optional
// named fault scenario for chaos exercises.
type sessionRequest struct {
	LogN          int    `json:"log_n"`
	LogSlots      int    `json:"log_slots"`
	Levels        int    `json:"levels"`
	LogScale      int    `json:"log_scale"`
	Rotations     []int  `json:"rotations"`
	Conjugation   bool   `json:"conjugation"`
	EnableKLSS    bool   `json:"enable_klss"`
	Seed          int64  `json:"seed"`
	Parallelism   int    `json:"parallelism"`
	FaultScenario string `json:"fault_scenario,omitempty"`
}

type sessionResponse struct {
	ID       string `json:"id"`
	Slots    int    `json:"slots"`
	MaxLevel int    `json:"max_level"`
	Shard    int    `json:"shard"`
}

func (d *daemon) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode session request: %w", err))
		return
	}
	cfg := fast.ContextConfig{
		LogN:        req.LogN,
		LogSlots:    req.LogSlots,
		Levels:      req.Levels,
		LogScale:    req.LogScale,
		Rotations:   req.Rotations,
		Conjugation: req.Conjugation,
		EnableKLSS:  req.EnableKLSS,
		Seed:        req.Seed,
		Parallelism: req.Parallelism,
	}

	// Reserve the session slot BEFORE the expensive keygen: checking the
	// limit, running seconds of key generation and only then inserting would
	// let N concurrent creates all pass the check and grow the registry past
	// MaxSessions — the memory bound the limit exists to enforce. The
	// reservation is one shared atomic, so creates admitted concurrently on
	// DIFFERENT shards still cannot collectively overshoot the process-wide
	// bound. It is released on any failure path and converted into the real
	// entry on success.
	if d.occupancy.Add(1) > int64(d.cfg.MaxSessions) {
		d.occupancy.Add(-1)
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("session limit %d reached", d.cfg.MaxSessions))
		return
	}
	id := "s" + strconv.FormatUint(d.nextID.Add(1), 10)
	sh, err := d.route(id)
	if err != nil {
		d.occupancy.Add(-1)
		d.writeAdmissionError(w, r, err)
		return
	}

	opts := []fast.Option{fast.WithObserver(d.observer), fast.WithEvkCache(d.evk, id, sh.id)}
	if req.FaultScenario != "" && req.FaultScenario != "none" {
		plan, err := fast.FaultScenario(req.FaultScenario)
		if err != nil {
			d.occupancy.Add(-1)
			httpError(w, http.StatusBadRequest, err)
			return
		}
		opts = append(opts, fast.WithFaultPlan(plan))
	}

	// Key generation is expensive: run it under the owning shard's admission
	// control too, so a burst of session creates cannot starve that shard's
	// evaluation workers unnoticed (and cannot starve any OTHER shard's
	// workers at all).
	var fctx *fast.Context
	units := keygenUnits(cfg)
	obsReq := obs.RequestFrom(r.Context())
	obsReq.SetSession(id)
	obsReq.SetUnits(units)
	err = sh.srv.Do(r.Context(), serve.Op{Name: "keygen", Units: units}, func(ctx context.Context) error {
		var err error
		fctx, err = fast.NewContext(cfg, opts...)
		return err
	})
	if err != nil {
		d.occupancy.Add(-1)
		d.writeAdmissionError(w, r, err)
		return
	}

	sess := &session{
		id:    id,
		ctx:   fctx,
		cm:    costmodel.ForContext(cfg.LogN, fctx.MaxLevel()),
		plans: newPlanCache(planCacheCap, d.mPlanHits, d.mPlanMisses),
		idem:  newIdemTable(d.cfg.IdemCap),
		meta: fast.SessionMeta{
			ID:              id,
			CreatedUnixNano: time.Now().UnixNano(),
			FaultScenario:   req.FaultScenario,
		},
	}
	// Write-ahead durability: the snapshot hits disk (fsync'd, atomically
	// renamed) BEFORE the create response is released, so a session the client
	// has been told about survives a SIGKILL in the very next instruction. A
	// persistent write failure degrades to a resident-only session (counted
	// and logged) rather than refusing service.
	if d.store != nil {
		sess.persisted = d.store.saveSnapshotRetry(fctx, sess.meta) == nil
	}

	d.mu.Lock()
	sh.mu.Lock()
	d.owners[id] = sh
	sh.sessions[id] = sess
	if d.store != nil {
		sess.lruEl = sh.lru.PushFront(sess)
		sess.lastUsed = time.Now()
	}
	sh.mu.Unlock()
	d.mu.Unlock()
	n := d.resident.Add(1)
	d.mSessionCount.Set(n)
	d.updateOccupancy()
	d.enforceResident(sh)
	writeJSON(w, sessionResponse{ID: id, Slots: fctx.Slots(), MaxLevel: fctx.MaxLevel(), Shard: sh.id})
}

func (d *daemon) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	id := r.PathValue("id")
	d.mu.Lock()
	sh := d.owners[id]
	var s *session
	resident := sh != nil
	if resident {
		sh.mu.Lock()
		s = sh.sessions[id]
		delete(sh.sessions, id)
		if s != nil && s.lruEl != nil {
			sh.lru.Remove(s.lruEl)
			s.lruEl = nil
		}
		sh.mu.Unlock()
		delete(d.owners, id)
	}
	_, onDisk := d.persisted[id]
	_, wasCorrupt := d.corrupt[id]
	delete(d.persisted, id)
	delete(d.corrupt, id)
	d.mu.Unlock()
	if !resident && !onDisk && !wasCorrupt {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	if resident || onDisk {
		// A corrupt tombstone released its occupancy slot when it was
		// tombstoned — deleting it only clears the 410.
		d.occupancy.Add(-1)
	}
	if resident {
		d.mPlanEvicted.Add(uint64(s.plans.drop()))
		d.mSessionCount.Set(d.resident.Add(-1))
	}
	if d.store != nil {
		d.store.remove(id)
	}
	d.updateOccupancy()
	w.WriteHeader(http.StatusNoContent)
}

type cnum struct {
	Re float64 `json:"re"`
	Im float64 `json:"im"`
}

func toComplex(vs []cnum) []complex128 {
	out := make([]complex128, len(vs))
	for i, v := range vs {
		out[i] = complex(v.Re, v.Im)
	}
	return out
}

func fromComplex(vs []complex128) []cnum {
	out := make([]cnum, len(vs))
	for i, v := range vs {
		out[i] = cnum{Re: real(v), Im: imag(v)}
	}
	return out
}

type encryptRequest struct {
	Values []cnum `json:"values"`
}

type ciphertextResponse struct {
	Ciphertext string  `json:"ciphertext"` // base64 of the wire format
	Level      int     `json:"level"`
	Scale      float64 `json:"scale"`
}

func encodeCiphertext(ct *fast.Ciphertext) (ciphertextResponse, error) {
	var buf bytes.Buffer
	if err := ct.Serialize(&buf); err != nil {
		return ciphertextResponse{}, err
	}
	return ciphertextResponse{
		Ciphertext: base64.StdEncoding.EncodeToString(buf.Bytes()),
		Level:      ct.Level(),
		Scale:      ct.Scale(),
	}, nil
}

func decodeCiphertext(fctx *fast.Context, b64 string) (*fast.Ciphertext, error) {
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, fmt.Errorf("ciphertext base64: %w", err)
	}
	return fctx.ReadCiphertext(bytes.NewReader(raw))
}

func (d *daemon) handleEncrypt(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	sh, sess, err := d.resolve(r.PathValue("id"))
	if err != nil {
		d.writeAdmissionError(w, r, err)
		return
	}
	d.withIdempotency(w, r, sess, func(w http.ResponseWriter) {
		var req encryptRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		obsReq := obs.RequestFrom(r.Context())
		obsReq.SetSession(sess.id)
		obsReq.SetUnits(sess.cm.PassUnits())
		ctx, cancel := requestContext(r)
		defer cancel()

		var resp ciphertextResponse
		err := sh.srv.Do(ctx, serve.Op{Name: "encrypt", Units: sess.cm.PassUnits()}, func(ctx context.Context) error {
			ct, err := sess.ctx.Encrypt(toComplex(req.Values))
			if err != nil {
				return err
			}
			resp, err = encodeCiphertext(ct)
			return err
		})
		if err != nil {
			d.writeAdmissionError(w, r, err)
			return
		}
		writeJSON(w, resp)
	})
}

type decryptRequest struct {
	Ciphertext string `json:"ciphertext"`
}

type decryptResponse struct {
	Values []cnum `json:"values"`
}

func (d *daemon) handleDecrypt(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	sh, sess, err := d.resolve(r.PathValue("id"))
	if err != nil {
		d.writeAdmissionError(w, r, err)
		return
	}
	var req decryptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ct, err := decodeCiphertext(sess.ctx, req.Ciphertext)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	obsReq := obs.RequestFrom(r.Context())
	obsReq.SetSession(sess.id)
	obsReq.SetUnits(sess.cm.PassUnits())
	ctx, cancel := requestContext(r)
	defer cancel()

	var resp decryptResponse
	err = sh.srv.Do(ctx, serve.Op{Name: "decrypt", Units: sess.cm.PassUnits()}, func(ctx context.Context) error {
		vals := sess.ctx.Decrypt(ct)
		if vals == nil {
			return fmt.Errorf("decrypt: %w", fast.ErrInvalidCiphertext)
		}
		resp.Values = fromComplex(vals)
		return nil
	})
	if err != nil {
		d.writeAdmissionError(w, r, err)
		return
	}
	writeJSON(w, resp)
}

func (d *daemon) handleEval(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	sh, sess, err := d.resolve(r.PathValue("id"))
	if err != nil {
		d.writeAdmissionError(w, r, err)
		return
	}
	d.withIdempotency(w, r, sess, func(w http.ResponseWriter) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		obsReq := obs.RequestFrom(r.Context())
		obsReq.SetSession(sess.id)
		obsReq.SetPhase(obs.PhasePlanning)
		ce, err := compileEval(sess, body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		obsReq.SetUnits(ce.units())
		obsReq.SetFingerprint(ce.plan.Fingerprint())
		ctx, cancel := requestContext(r)
		defer cancel()

		op := serve.Op{Name: "eval", Units: ce.units()}
		if d.cfg.Sequential {
			// Baseline/escape-hatch mode: straight-line interpretation on this
			// request's own worker, no cross-request coalescing.
			var resp ciphertextResponse
			err = sh.srv.Do(ctx, op, func(ctx context.Context) error {
				out, err := sess.ctx.ExecuteSequential(ctx, ce.plan, ce.inputs)
				sh.recordFaultHealth(sess)
				if err != nil {
					return err
				}
				resp, err = encodeCiphertext(out)
				return err
			})
			if err != nil {
				d.writeAdmissionError(w, r, err)
				return
			}
			writeJSON(w, resp)
			return
		}
		res, err := sh.batcher.Do(ctx, op, sess.id, ce)
		if err != nil {
			d.writeAdmissionError(w, r, err)
			return
		}
		writeJSON(w, res.(ciphertextResponse))
	})
}

// requestContext derives the task context from the request: the client
// disconnect propagates via r.Context(), and an optional X-Deadline-Ms header
// adds a deadline the admission layer can shed against. The deadline is also
// stamped onto the in-flight record for /debug/requests' remaining column.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		if ms, err := strconv.Atoi(h); err == nil && ms > 0 {
			obs.RequestFrom(ctx).SetDeadline(time.Now().Add(time.Duration(ms) * time.Millisecond))
			return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		}
	}
	return ctx, func() {}
}

// writeAdmissionError maps the serving-layer error taxonomy onto HTTP status
// codes — the degradation ladder, as seen by a client:
//
//	429 Too Many Requests   queue full (burst; back off and retry)
//	503 Service Unavailable breaker open, draining, or shard down
//	                        (shard_down carries Retry-After: failover is in
//	                        progress, retry shortly and a survivor serves it)
//	504 Gateway Timeout     shed: deadline provably unmeetable
//	408 Request Timeout     canceled/deadline mid-flight
//	404 Not Found           session unknown (neither resident nor on disk)
//	410 Gone                session snapshot corrupt: unrecoverable, re-create
//	500 Internal            panic (isolated) or evaluation failure
//
// The rung is also recorded as the request's outcome, so the access log names
// the exact ladder step even where the status code is ambiguous (503 covers
// breaker_open, draining and shard_down; 504 covers both shed and deadline).
func (d *daemon) writeAdmissionError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	outcome := "error"
	switch {
	case errors.Is(err, errUnknownSession):
		status, outcome = http.StatusNotFound, "unknown_session"
	case errors.Is(err, fast.ErrCorruptSnapshot):
		// 410 Gone: the snapshot failed integrity validation, so the session
		// is permanently unrecoverable — restoring it could decrypt wrongly.
		// Clients must re-create the keyspace, not retry.
		status, outcome = http.StatusGone, "corrupt_snapshot"
	case errors.Is(err, shardpkg.ErrShardDown):
		// Failover window: the owning shard is fenced and its sessions are
		// mid-migration. Retry-After tells the client this is the transient
		// rung — one short backoff and a surviving shard owns the range.
		w.Header().Set("Retry-After", "1")
		status, outcome = http.StatusServiceUnavailable, "shard_down"
	case errors.Is(err, serve.ErrQueueFull):
		status, outcome = http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, serve.ErrShed):
		status, outcome = http.StatusGatewayTimeout, "shed"
	case errors.Is(err, serve.ErrBreakerOpen):
		status, outcome = http.StatusServiceUnavailable, "breaker_open"
	case errors.Is(err, serve.ErrDraining):
		status, outcome = http.StatusServiceUnavailable, "draining"
	case errors.Is(err, fast.ErrDeadline):
		status, outcome = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, fast.ErrCanceled):
		status, outcome = http.StatusRequestTimeout, "canceled"
	case errors.Is(err, serve.ErrPanicked):
		outcome = "panic"
	case errors.Is(err, fast.ErrKeyMissing), errors.Is(err, fast.ErrInvalidCiphertext),
		errors.Is(err, fast.ErrLevelMismatch), errors.Is(err, fast.ErrLevelExhausted),
		errors.Is(err, fast.ErrScaleMismatch), errors.Is(err, fast.ErrSlotCountMismatch),
		errors.Is(err, fast.ErrInvalidValue), errors.Is(err, fast.ErrMethodUnavailable),
		errors.Is(err, fast.ErrInvalidParameters):
		status, outcome = http.StatusBadRequest, "bad_request"
	}
	obs.RequestFrom(r.Context()).SetOutcome(outcome)
	httpError(w, status, err)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(v)
}
