package main

import (
	"bytes"
	"container/list"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/serve"
)

// daemonConfig sizes the serving layer.
type daemonConfig struct {
	Workers    int
	QueueDepth int
	// BreakerThreshold is the number of consecutive fault-bearing requests
	// that open the circuit breaker; BreakerCooldown the open interval before
	// the half-open probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxSessions bounds the session registry (each session owns a full key
	// set — memory, not descriptors, is the scarce resource). With a state
	// dir the bound covers resident AND persisted sessions: it is the total
	// keyspace count the daemon will accept, not the memory bound.
	MaxSessions int
	// StateDir enables crash-safe session durability: every session is
	// write-ahead snapshotted there on create (atomic rename, fsync'd),
	// restored lazily after a restart, and evicted to disk under resident
	// pressure. Empty disables persistence (sessions die with the process).
	StateDir string
	// MaxResident bounds the sessions held in memory when StateDir is set
	// (0 = MaxSessions). Past the bound the least-recently-used session is
	// snapshotted (if dirty) and released; the next request faults it back in.
	MaxResident int
	// SessionTTL evicts sessions idle longer than this to disk (0 disables;
	// requires StateDir).
	SessionTTL time.Duration
	// IdemCap bounds each session's idempotency dedup table (0 = 512).
	IdemCap int
	// StoreFaults optionally injects disk-write failures into the persistence
	// layer (chaos testing of the retry-then-degrade path).
	StoreFaults fault.Plan
	// Sequential disables cross-request micro-batching: each eval executes
	// straight-line on its own worker (the pre-planner behavior). Used as the
	// benchmark baseline and as an operational escape hatch.
	Sequential bool
	Observer   *fast.Observer
	// Logger receives the JSON access log (one record per request) plus
	// slow-request warnings. Nil discards all logging.
	Logger *slog.Logger
	// SlowRequest is the duration above which a completed request additionally
	// emits a warn-level "slow request" record (0 disables).
	SlowRequest time.Duration
}

func (c daemonConfig) withDefaults() daemonConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.MaxResident <= 0 || c.MaxResident > c.MaxSessions {
		c.MaxResident = c.MaxSessions
	}
	if c.IdemCap <= 0 {
		c.IdemCap = idemTableCap
	}
	if c.Observer == nil {
		c.Observer = fast.NewObserver()
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogger(io.Discard, slog.LevelInfo)
	}
	return c
}

// session is one client keyspace: a fast.Context plus the bookkeeping the
// admission layer needs (cost parameters, fault-recovery watermark) and the
// durability layer adds (snapshot metadata, idempotency table, LRU position).
type session struct {
	id    string
	ctx   *fast.Context
	cm    costmodel.Params
	plans *planCache // compiled-plan LRU keyed by Plan fingerprint
	meta  fast.SessionMeta
	idem  *idemTable // nil only for registry entries tests build by hand

	// lruEl and lastUsed are guarded by daemon.mu (they move with the
	// registry's LRU list); both stay zero when persistence is disabled.
	lruEl    *list.Element
	lastUsed time.Time

	mu           sync.Mutex
	lastRecovery int  // Retries+Timeouts+Refetches watermark for breaker deltas
	persisted    bool // on-disk snapshot is current (guards re-save on evict)
}

// faultRecoveryDelta returns the growth of the session's fault-recovery
// counters since the previous call — the breaker's health signal.
func (s *session) faultRecoveryDelta() int {
	st := s.ctx.FaultStats()
	total := st.Retries + st.Timeouts + st.Refetches
	s.mu.Lock()
	defer s.mu.Unlock()
	delta := total - s.lastRecovery
	s.lastRecovery = total
	return delta
}

// daemon is the fastd HTTP server: a session registry in front of the
// admission-controlled evaluator pool.
type daemon struct {
	cfg      daemonConfig
	srv      *serve.Server
	batcher  *serve.Batcher
	breaker  *serve.Breaker
	observer *fast.Observer
	requests *obs.RequestTable
	logger   *slog.Logger

	store *sessionStore // nil when persistence is disabled

	mu        sync.RWMutex
	sessions  map[string]*session      // resident
	persisted map[string]struct{}      // on disk only (evicted or not yet restored)
	corrupt   map[string]struct{}      // snapshot failed integrity validation; skipped
	restoring map[string]chan struct{} // restore singleflight, closed on completion
	lru       *list.List               // resident eviction order, front = most recent
	reserved  int                      // slots held by in-flight session creates (keygen running)
	nextID    uint64

	sweepStop chan struct{}
	sweepDone chan struct{}
	stopOnce  sync.Once

	mRequests     *obs.Counter
	mFaultTrips   *obs.Counter
	mSessionCount *obs.Gauge
	mPlanHits     *obs.Counter
	mPlanMisses   *obs.Counter
	mPlanEvicted  *obs.Counter
	mResident     *obs.Gauge
	mPersisted    *obs.Gauge
	mRestored     *obs.Counter
	mEvicted      *obs.Counter
	mCorrupt      *obs.Counter
	mIdemReplays  *obs.Counter
	mIdemRecorded *obs.Counter
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Observer.Registry()
	br := serve.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	d := &daemon{
		cfg:       cfg,
		breaker:   br,
		observer:  cfg.Observer,
		requests:  obs.NewRequestTable(reg),
		logger:    cfg.Logger,
		sessions:  map[string]*session{},
		persisted: map[string]struct{}{},
		corrupt:   map[string]struct{}{},
		restoring: map[string]chan struct{}{},
		lru:       list.New(),
		srv: serve.New(serve.Config{
			Workers:    cfg.Workers,
			QueueDepth: cfg.QueueDepth,
			Breaker:    br,
			Reg:        reg,
		}),
	}
	// Eval requests batch by session: concurrently admitted programs on one
	// keyspace execute as a micro-batch, sharing hoisted decompositions when
	// their rotation groups read identical input ciphertexts.
	d.batcher = serve.NewBatcher(d.srv, d.runEvalBatch, reg)
	if reg != nil {
		d.mRequests = reg.Counter("fastd.requests")
		d.mFaultTrips = reg.Counter("fastd.breaker_fault_reports")
		d.mSessionCount = reg.Gauge("fastd.sessions")
		d.mPlanHits = reg.Counter("serve.plan_cache.hits")
		d.mPlanMisses = reg.Counter("serve.plan_cache.misses")
		d.mPlanEvicted = reg.Counter("serve.plan_cache.evicted")
		d.mResident = reg.Gauge("sessions.resident")
		d.mPersisted = reg.Gauge("sessions.persisted")
		d.mRestored = reg.Counter("sessions.restored")
		d.mEvicted = reg.Counter("sessions.evicted")
		d.mCorrupt = reg.Counter("sessions.corrupt")
		d.mIdemReplays = reg.Counter("fastd.idem.replays")
		d.mIdemRecorded = reg.Counter("fastd.idem.recorded")
	}
	if cfg.StateDir != "" {
		store, err := openSessionStore(cfg.StateDir, fault.NewInjector(cfg.StoreFaults), reg, d.logger)
		if err != nil {
			return nil, err
		}
		d.store = store
		// Persisted sessions are NOT restored here — startup stays O(files)
		// cheap and the first request for each session faults it in (decode,
		// checksum, parameter recompile, key deserialisation). Only the ID
		// space is recovered eagerly, so new creates never collide with
		// pre-crash sessions.
		ids, err := store.scan()
		if err != nil {
			return nil, fmt.Errorf("fastd: scan state dir: %w", err)
		}
		for _, id := range ids {
			d.persisted[id] = struct{}{}
			if n, err := strconv.ParseUint(strings.TrimPrefix(id, "s"), 10, 64); err == nil && n > d.nextID {
				d.nextID = n
			}
		}
		d.updateOccupancy()
		if len(ids) > 0 {
			d.logger.Info("session state recovered", "dir", cfg.StateDir, "persisted", len(ids))
		}
		if cfg.SessionTTL > 0 {
			d.sweepStop = make(chan struct{})
			d.sweepDone = make(chan struct{})
			go d.sweepIdle()
		}
	}
	return d, nil
}

// runEvalBatch executes one micro-batch of compiled eval requests. All items
// share a batch key (the session ID), so one session context executes them;
// each run keeps its own request context for per-request cancellation.
func (d *daemon) runEvalBatch(items []*serve.BatchItem) {
	runs := make([]*fast.Run, len(items))
	var sess *session
	for i, it := range items {
		ce := it.Payload.(*compiledEval)
		sess = ce.sess
		runs[i] = &fast.Run{
			Plan:     ce.plan,
			Inputs:   ce.inputs,
			InputIDs: ce.inputIDs,
			Ctx:      it.Ctx,
		}
	}
	sess.ctx.ExecuteBatch(runs)
	d.recordFaultHealth(sess)
	for i, it := range items {
		// Stamp the batch sequence onto the in-flight record so the access
		// log and /debug/requests can join against /debug/plans.
		obs.RequestFrom(it.Ctx).SetBatch(runs[i].Batch)
		if runs[i].Err != nil {
			it.Finish(nil, runs[i].Err)
			continue
		}
		resp, err := encodeCiphertext(runs[i].Out)
		if err != nil {
			it.Finish(nil, err)
			continue
		}
		it.Finish(resp, nil)
	}
}

// drain gracefully stops the admission layer (bounded by ctx) and the idle
// sweeper. No final mass-snapshot is needed: durability is write-ahead, so
// whatever is on disk at any instant — graceful drain or SIGKILL — is already
// a consistent recovery image.
func (d *daemon) drain(ctx context.Context) error {
	d.stopOnce.Do(func() {
		if d.sweepStop != nil {
			close(d.sweepStop)
			<-d.sweepDone
		}
	})
	return d.srv.Drain(ctx)
}

// ---- HTTP surface ----------------------------------------------------------

// handler mounts the daemon's endpoints plus the observer's observability
// surface (/metrics, /debug/..., /snapshot.json, /trace.json), all wrapped in
// the request-correlation middleware so every response carries X-Request-Id
// and every request is tabled and access-logged.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("POST /v1/sessions", d.handleCreateSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", d.handleDeleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/encrypt", d.handleEncrypt)
	mux.HandleFunc("POST /v1/sessions/{id}/decrypt", d.handleDecrypt)
	mux.HandleFunc("POST /v1/sessions/{id}/eval", d.handleEval)

	ob := d.observer.Handler()
	for _, p := range []string{"/metrics", "/debug/", "/snapshot.json", "/trace.json", "/trace.txt"} {
		mux.Handle(p, ob)
	}
	// Most-specific-pattern-wins: these shadow the observer's /debug/ catch-all.
	mux.Handle("GET /debug/requests", d.requests.Handler())
	mux.HandleFunc("GET /debug/plans", d.handlePlans)
	return d.withObservability(mux)
}

// handlePlans serves the observer's retained plan-execution records (the ring
// recordBatch fills), oldest first — the join surface between request IDs,
// batch sequence numbers and planner decisions.
func (d *daemon) handlePlans(w http.ResponseWriter, _ *http.Request) {
	recs := d.observer.PlanRecords()
	if recs == nil {
		recs = []fast.PlanRecord{}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"count": len(recs), "plans": recs})
}

func (d *daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// sessionReadiness is /readyz's view of the session registry: occupancy
// against both bounds plus the durability lifecycle counters.
type sessionReadiness struct {
	Resident    int    `json:"resident"`
	Persisted   int    `json:"persisted"`
	Max         int    `json:"max"`
	MaxResident int    `json:"max_resident"`
	Restored    uint64 `json:"restored"`
	Evicted     uint64 `json:"evicted"`
	Corrupt     uint64 `json:"corrupt"`
}

func (d *daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	type readiness struct {
		Ready    bool               `json:"ready"`
		Draining bool               `json:"draining"`
		Breaker  string             `json:"breaker"`
		Queue    int                `json:"queue_depth"`
		Inflight int                `json:"inflight_requests"`
		Sessions sessionReadiness   `json:"sessions"`
		Latency  map[string]float64 `json:"latency"`
	}
	// Quantiles are estimated from the end-to-end log2-bucket latency
	// histogram (rank interpolation, within 2x of exact) — the same numbers
	// the serve.latency.p*_ns gauges export on /metrics.
	lat := d.observer.Registry().Histogram("serve.latency_ns").Snapshot()
	d.mu.RLock()
	occupancy := len(d.sessions) + len(d.persisted) + d.reserved
	sess := sessionReadiness{
		Resident:    len(d.sessions),
		Persisted:   len(d.persisted),
		Max:         d.cfg.MaxSessions,
		MaxResident: d.cfg.MaxResident,
		Restored:    d.mRestored.Value(),
		Evicted:     d.mEvicted.Value(),
		Corrupt:     d.mCorrupt.Value(),
	}
	d.mu.RUnlock()
	r := readiness{
		Draining: d.srv.Draining(),
		Breaker:  d.breaker.State().String(),
		Queue:    d.srv.QueueLen(),
		Inflight: d.requests.Len(),
		Sessions: sess,
		Latency: map[string]float64{
			"serve.latency.p50_ns": lat.Quantile(0.50),
			"serve.latency.p90_ns": lat.Quantile(0.90),
			"serve.latency.p99_ns": lat.Quantile(0.99),
		},
	}
	// A full registry flips readiness: the next session create would be
	// refused (429), so a balancer should steer keyspace-creating clients
	// elsewhere. Existing sessions keep being served either way.
	r.Ready = !r.Draining && d.breaker.State() != serve.BreakerOpen &&
		occupancy < d.cfg.MaxSessions
	if !r.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, r)
}

// sessionRequest mirrors fast.ContextConfig over the wire, plus an optional
// named fault scenario for chaos exercises.
type sessionRequest struct {
	LogN          int    `json:"log_n"`
	LogSlots      int    `json:"log_slots"`
	Levels        int    `json:"levels"`
	LogScale      int    `json:"log_scale"`
	Rotations     []int  `json:"rotations"`
	Conjugation   bool   `json:"conjugation"`
	EnableKLSS    bool   `json:"enable_klss"`
	Seed          int64  `json:"seed"`
	Parallelism   int    `json:"parallelism"`
	FaultScenario string `json:"fault_scenario,omitempty"`
}

type sessionResponse struct {
	ID       string `json:"id"`
	Slots    int    `json:"slots"`
	MaxLevel int    `json:"max_level"`
}

func (d *daemon) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode session request: %w", err))
		return
	}
	cfg := fast.ContextConfig{
		LogN:        req.LogN,
		LogSlots:    req.LogSlots,
		Levels:      req.Levels,
		LogScale:    req.LogScale,
		Rotations:   req.Rotations,
		Conjugation: req.Conjugation,
		EnableKLSS:  req.EnableKLSS,
		Seed:        req.Seed,
		Parallelism: req.Parallelism,
	}
	opts := []fast.Option{fast.WithObserver(d.observer)}
	if req.FaultScenario != "" && req.FaultScenario != "none" {
		plan, err := fast.FaultScenario(req.FaultScenario)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		opts = append(opts, fast.WithFaultPlan(plan))
	}

	// Reserve the session slot under the lock BEFORE the expensive keygen:
	// checking the limit, unlocking for seconds of key generation and only
	// then inserting would let N concurrent creates all pass the check and
	// grow the registry past MaxSessions — the memory bound the limit exists
	// to enforce. The reservation is released on any failure path and
	// converted into the real entry on success.
	d.mu.Lock()
	if len(d.sessions)+len(d.persisted)+d.reserved >= d.cfg.MaxSessions {
		d.mu.Unlock()
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("session limit %d reached", d.cfg.MaxSessions))
		return
	}
	d.reserved++
	d.nextID++
	id := "s" + strconv.FormatUint(d.nextID, 10)
	d.mu.Unlock()

	// Key generation is expensive: run it under admission control too, so a
	// burst of session creates cannot starve evaluation workers unnoticed.
	var fctx *fast.Context
	units := keygenUnits(cfg)
	obsReq := obs.RequestFrom(r.Context())
	obsReq.SetSession(id)
	obsReq.SetUnits(units)
	err := d.srv.Do(r.Context(), serve.Op{Name: "keygen", Units: units}, func(ctx context.Context) error {
		var err error
		fctx, err = fast.NewContext(cfg, opts...)
		return err
	})
	if err != nil {
		d.mu.Lock()
		d.reserved--
		d.mu.Unlock()
		d.writeAdmissionError(w, r, err)
		return
	}

	sess := &session{
		id:    id,
		ctx:   fctx,
		cm:    costmodel.ForContext(cfg.LogN, fctx.MaxLevel()),
		plans: newPlanCache(planCacheCap, d.mPlanHits, d.mPlanMisses),
		idem:  newIdemTable(d.cfg.IdemCap),
		meta: fast.SessionMeta{
			ID:              id,
			CreatedUnixNano: time.Now().UnixNano(),
			FaultScenario:   req.FaultScenario,
		},
	}
	// Write-ahead durability: the snapshot hits disk (fsync'd, atomically
	// renamed) BEFORE the create response is released, so a session the client
	// has been told about survives a SIGKILL in the very next instruction. A
	// persistent write failure degrades to a resident-only session (counted
	// and logged) rather than refusing service.
	if d.store != nil {
		sess.persisted = d.store.saveSnapshotRetry(fctx, sess.meta) == nil
	}

	d.mu.Lock()
	d.reserved--
	d.sessions[id] = sess
	if d.store != nil {
		sess.lruEl = d.lru.PushFront(sess)
		sess.lastUsed = time.Now()
	}
	n := len(d.sessions)
	d.mu.Unlock()
	d.mSessionCount.Set(int64(n))
	d.updateOccupancy()
	d.enforceResident()
	writeJSON(w, sessionResponse{ID: id, Slots: fctx.Slots(), MaxLevel: fctx.MaxLevel()})
}

func (d *daemon) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	id := r.PathValue("id")
	d.mu.Lock()
	s, resident := d.sessions[id]
	_, onDisk := d.persisted[id]
	_, wasCorrupt := d.corrupt[id]
	delete(d.sessions, id)
	delete(d.persisted, id)
	delete(d.corrupt, id)
	if resident && s.lruEl != nil {
		d.lru.Remove(s.lruEl)
		s.lruEl = nil
	}
	n := len(d.sessions)
	d.mu.Unlock()
	if !resident && !onDisk && !wasCorrupt {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	if resident {
		d.mPlanEvicted.Add(uint64(s.plans.drop()))
	}
	if d.store != nil {
		d.store.remove(id)
	}
	d.mSessionCount.Set(int64(n))
	d.updateOccupancy()
	w.WriteHeader(http.StatusNoContent)
}

type cnum struct {
	Re float64 `json:"re"`
	Im float64 `json:"im"`
}

func toComplex(vs []cnum) []complex128 {
	out := make([]complex128, len(vs))
	for i, v := range vs {
		out[i] = complex(v.Re, v.Im)
	}
	return out
}

func fromComplex(vs []complex128) []cnum {
	out := make([]cnum, len(vs))
	for i, v := range vs {
		out[i] = cnum{Re: real(v), Im: imag(v)}
	}
	return out
}

type encryptRequest struct {
	Values []cnum `json:"values"`
}

type ciphertextResponse struct {
	Ciphertext string  `json:"ciphertext"` // base64 of the wire format
	Level      int     `json:"level"`
	Scale      float64 `json:"scale"`
}

func encodeCiphertext(ct *fast.Ciphertext) (ciphertextResponse, error) {
	var buf bytes.Buffer
	if err := ct.Serialize(&buf); err != nil {
		return ciphertextResponse{}, err
	}
	return ciphertextResponse{
		Ciphertext: base64.StdEncoding.EncodeToString(buf.Bytes()),
		Level:      ct.Level(),
		Scale:      ct.Scale(),
	}, nil
}

func decodeCiphertext(fctx *fast.Context, b64 string) (*fast.Ciphertext, error) {
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, fmt.Errorf("ciphertext base64: %w", err)
	}
	return fctx.ReadCiphertext(bytes.NewReader(raw))
}

func (d *daemon) handleEncrypt(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	sess, err := d.getSession(r.PathValue("id"))
	if err != nil {
		d.writeAdmissionError(w, r, err)
		return
	}
	d.withIdempotency(w, r, sess, func(w http.ResponseWriter) {
		var req encryptRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		obsReq := obs.RequestFrom(r.Context())
		obsReq.SetSession(sess.id)
		obsReq.SetUnits(sess.cm.PassUnits())
		ctx, cancel := requestContext(r)
		defer cancel()

		var resp ciphertextResponse
		err := d.srv.Do(ctx, serve.Op{Name: "encrypt", Units: sess.cm.PassUnits()}, func(ctx context.Context) error {
			ct, err := sess.ctx.Encrypt(toComplex(req.Values))
			if err != nil {
				return err
			}
			resp, err = encodeCiphertext(ct)
			return err
		})
		if err != nil {
			d.writeAdmissionError(w, r, err)
			return
		}
		writeJSON(w, resp)
	})
}

type decryptRequest struct {
	Ciphertext string `json:"ciphertext"`
}

type decryptResponse struct {
	Values []cnum `json:"values"`
}

func (d *daemon) handleDecrypt(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	sess, err := d.getSession(r.PathValue("id"))
	if err != nil {
		d.writeAdmissionError(w, r, err)
		return
	}
	var req decryptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ct, err := decodeCiphertext(sess.ctx, req.Ciphertext)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	obsReq := obs.RequestFrom(r.Context())
	obsReq.SetSession(sess.id)
	obsReq.SetUnits(sess.cm.PassUnits())
	ctx, cancel := requestContext(r)
	defer cancel()

	var resp decryptResponse
	err = d.srv.Do(ctx, serve.Op{Name: "decrypt", Units: sess.cm.PassUnits()}, func(ctx context.Context) error {
		vals := sess.ctx.Decrypt(ct)
		if vals == nil {
			return fmt.Errorf("decrypt: %w", fast.ErrInvalidCiphertext)
		}
		resp.Values = fromComplex(vals)
		return nil
	})
	if err != nil {
		d.writeAdmissionError(w, r, err)
		return
	}
	writeJSON(w, resp)
}

func (d *daemon) handleEval(w http.ResponseWriter, r *http.Request) {
	d.mRequests.Inc()
	sess, err := d.getSession(r.PathValue("id"))
	if err != nil {
		d.writeAdmissionError(w, r, err)
		return
	}
	d.withIdempotency(w, r, sess, func(w http.ResponseWriter) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		obsReq := obs.RequestFrom(r.Context())
		obsReq.SetSession(sess.id)
		obsReq.SetPhase(obs.PhasePlanning)
		ce, err := compileEval(sess, body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		obsReq.SetUnits(ce.units())
		obsReq.SetFingerprint(ce.plan.Fingerprint())
		ctx, cancel := requestContext(r)
		defer cancel()

		op := serve.Op{Name: "eval", Units: ce.units()}
		if d.cfg.Sequential {
			// Baseline/escape-hatch mode: straight-line interpretation on this
			// request's own worker, no cross-request coalescing.
			var resp ciphertextResponse
			err = d.srv.Do(ctx, op, func(ctx context.Context) error {
				out, err := sess.ctx.ExecuteSequential(ctx, ce.plan, ce.inputs)
				d.recordFaultHealth(sess)
				if err != nil {
					return err
				}
				resp, err = encodeCiphertext(out)
				return err
			})
			if err != nil {
				d.writeAdmissionError(w, r, err)
				return
			}
			writeJSON(w, resp)
			return
		}
		res, err := d.batcher.Do(ctx, op, sess.id, ce)
		if err != nil {
			d.writeAdmissionError(w, r, err)
			return
		}
		writeJSON(w, res.(ciphertextResponse))
	})
}

// recordFaultHealth feeds the circuit breaker the session's modeled Hemera
// transfer-fault delta: a request whose key transfers needed recovery actions
// (retries, timeouts, refetches) counts as a downstream failure even though
// the computation itself succeeded bit-exactly — the breaker's job is to
// detect the transfer fault storm, not corrupt data.
//
// Sessions without an active fault plan record NOTHING here: the breaker is
// daemon-global and consecutive-failure based, so a RecordSuccess per healthy
// eval would reset the streak and let any interleaved healthy-session traffic
// mask a sustained fault storm on another session. Half-open recovery does
// not depend on this call — the admission layer resolves the probe task's
// outcome itself (serve.Server.settle), so a clean eval still re-closes an
// open breaker after faults stop.
func (d *daemon) recordFaultHealth(sess *session) {
	if !sess.ctx.FaultPlanActive() {
		return
	}
	if delta := sess.faultRecoveryDelta(); delta > 0 {
		d.mFaultTrips.Inc()
		d.breaker.RecordFailure()
	} else {
		d.breaker.RecordSuccess()
	}
}

// requestContext derives the task context from the request: the client
// disconnect propagates via r.Context(), and an optional X-Deadline-Ms header
// adds a deadline the admission layer can shed against. The deadline is also
// stamped onto the in-flight record for /debug/requests' remaining column.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		if ms, err := strconv.Atoi(h); err == nil && ms > 0 {
			obs.RequestFrom(ctx).SetDeadline(time.Now().Add(time.Duration(ms) * time.Millisecond))
			return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		}
	}
	return ctx, func() {}
}

// writeAdmissionError maps the serving-layer error taxonomy onto HTTP status
// codes — the degradation ladder, as seen by a client:
//
//	429 Too Many Requests   queue full (burst; back off and retry)
//	503 Service Unavailable breaker open or draining (retry elsewhere/later)
//	504 Gateway Timeout     shed: deadline provably unmeetable
//	408 Request Timeout     canceled/deadline mid-flight
//	404 Not Found           session unknown (neither resident nor on disk)
//	410 Gone                session snapshot corrupt: unrecoverable, re-create
//	500 Internal            panic (isolated) or evaluation failure
//
// The rung is also recorded as the request's outcome, so the access log names
// the exact ladder step even where the status code is ambiguous (503 covers
// both breaker_open and draining; 504 covers both shed and deadline).
func (d *daemon) writeAdmissionError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	outcome := "error"
	switch {
	case errors.Is(err, errUnknownSession):
		status, outcome = http.StatusNotFound, "unknown_session"
	case errors.Is(err, fast.ErrCorruptSnapshot):
		// 410 Gone: the snapshot failed integrity validation, so the session
		// is permanently unrecoverable — restoring it could decrypt wrongly.
		// Clients must re-create the keyspace, not retry.
		status, outcome = http.StatusGone, "corrupt_snapshot"
	case errors.Is(err, serve.ErrQueueFull):
		status, outcome = http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, serve.ErrShed):
		status, outcome = http.StatusGatewayTimeout, "shed"
	case errors.Is(err, serve.ErrBreakerOpen):
		status, outcome = http.StatusServiceUnavailable, "breaker_open"
	case errors.Is(err, serve.ErrDraining):
		status, outcome = http.StatusServiceUnavailable, "draining"
	case errors.Is(err, fast.ErrDeadline):
		status, outcome = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, fast.ErrCanceled):
		status, outcome = http.StatusRequestTimeout, "canceled"
	case errors.Is(err, serve.ErrPanicked):
		outcome = "panic"
	case errors.Is(err, fast.ErrKeyMissing), errors.Is(err, fast.ErrInvalidCiphertext),
		errors.Is(err, fast.ErrLevelMismatch), errors.Is(err, fast.ErrLevelExhausted),
		errors.Is(err, fast.ErrScaleMismatch), errors.Is(err, fast.ErrSlotCountMismatch),
		errors.Is(err, fast.ErrInvalidValue), errors.Is(err, fast.ErrMethodUnavailable),
		errors.Is(err, fast.ErrInvalidParameters):
		status, outcome = http.StatusBadRequest, "bad_request"
	}
	obs.RequestFrom(r.Context()).SetOutcome(outcome)
	httpError(w, status, err)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(v)
}
