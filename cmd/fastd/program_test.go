package main

// Wire-level tests for the two eval program formats: the v1 straight-line
// array (legacy, adapter-lowered) and the v2 fast.Program object with an
// explicit version field. Validation failures must map to distinct 400
// messages so clients can tell a duplicate write from a shadowed input from
// dead code without parsing Go error chains.

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	fast "github.com/fastfhe/fast"
)

// evalBody builds a raw eval request whose program field is arbitrary JSON,
// bypassing the typed evalRequest used elsewhere in the tests.
func evalBody(inputs map[string]string, program any, output string) map[string]any {
	return map[string]any{"inputs": inputs, "program": program, "output": output}
}

// TestEvalValidationMessages drives the satellite-1 validation classes over
// HTTP and asserts each yields a 400 with its own distinguishing message.
func TestEvalValidationMessages(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 1})
	base := ts.URL
	sr := createSession(t, base, testSessionRequest())
	slots := sr.Slots
	vals := make([]complex128, slots)
	for i := range vals {
		vals[i] = complex(0.1, 0)
	}
	cx := encryptValues(t, base, sr.ID, vals).Ciphertext
	cy := encryptValues(t, base, sr.ID, vals).Ciphertext

	cases := []struct {
		name    string
		body    map[string]any
		message string // must appear in the 400 error body
	}{
		{
			name: "duplicate register write",
			body: evalBody(map[string]string{"x": cx}, []progOp{
				{Op: "addconst", A: "x", Value: 1, Out: "t"},
				{Op: "addconst", A: "x", Value: 2, Out: "t"},
				{Op: "add", A: "t", B: "t", Out: "out"},
			}, "out"),
			message: "already written (duplicate write)",
		},
		{
			name: "write shadows an input",
			body: evalBody(map[string]string{"x": cx, "y": cy}, []progOp{
				{Op: "addconst", A: "x", Value: 1, Out: "y"},
				{Op: "add", A: "y", B: "x", Out: "out"},
			}, "out"),
			message: "shadows a program input",
		},
		{
			name: "unused input",
			body: evalBody(map[string]string{"x": cx, "y": cy}, []progOp{
				{Op: "addconst", A: "x", Value: 1, Out: "out"},
			}, "out"),
			message: "is never used",
		},
		{
			name:    "output never written",
			body:    evalBody(map[string]string{"x": cx}, []progOp{{Op: "addconst", A: "x", Value: 1, Out: "t"}}, "out"),
			message: "never written",
		},
		{
			name: "undefined register",
			body: evalBody(map[string]string{"x": cx}, []progOp{
				{Op: "add", A: "x", B: "ghost", Out: "out"},
			}, "out"),
			message: "undefined register",
		},
		{
			name:    "unknown op",
			body:    evalBody(map[string]string{"x": cx}, []progOp{{Op: "teleport", A: "x", Out: "out"}}, "out"),
			message: "unknown op",
		},
		{
			name: "missing ciphertext for declared input",
			body: map[string]any{
				"inputs": map[string]string{"x": cx},
				"program": json.RawMessage(`{"version":2,"inputs":["x","y"],` +
					`"ops":[{"op":"add","a":"x","b":"y","out":"out"}],"output":"out"}`),
			},
			message: "missing ciphertext for input",
		},
		{
			name: "undeclared ciphertext",
			body: map[string]any{
				"inputs": map[string]string{"x": cx, "stray": cy},
				"program": json.RawMessage(`{"version":2,"inputs":["x"],` +
					`"ops":[{"op":"addconst","a":"x","value":1,"out":"out"}],"output":"out"}`),
			},
			message: "does not match a declared input",
		},
		{
			name: "unsupported program version",
			body: map[string]any{
				"inputs": map[string]string{"x": cx},
				"program": json.RawMessage(`{"version":7,"inputs":["x"],` +
					`"ops":[{"op":"addconst","a":"x","value":1,"out":"out"}],"output":"out"}`),
			},
			message: "version 7 unsupported",
		},
		{
			name: "level exhaustion caught at plan time",
			body: evalBody(map[string]string{"x": cx}, []progOp{
				// Four rescaling multiplies on a 3-level chain: the fourth
				// would rescale below the bottom, rejected before admission.
				{Op: "mul", A: "x", B: "x", Out: "m1"},
				{Op: "mul", A: "m1", B: "m1", Out: "m2"},
				{Op: "mul", A: "m2", B: "m2", Out: "m3"},
				{Op: "mul", A: "m3", B: "m3", Out: "out"},
			}, "out"),
			message: "rescale below the chain bottom",
		},
	}

	seen := make(map[string]bool)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval", nil, tc.body, nil)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", status, raw)
			}
			var errResp struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &errResp); err != nil {
				t.Fatalf("decode error body %q: %v", raw, err)
			}
			if !strings.Contains(errResp.Error, tc.message) {
				t.Fatalf("error %q does not contain %q", errResp.Error, tc.message)
			}
			if seen[errResp.Error] {
				t.Fatalf("error message %q is not distinct across validation classes", errResp.Error)
			}
			seen[errResp.Error] = true
		})
	}
}

// TestEvalV2ProgramEndToEnd serves a v2 object program (explicit version
// field, unpinned methods left to the planner) and checks the decrypted
// result numerically; the bit-exactness of the planner path is covered by
// the chaos suite.
func TestEvalV2ProgramEndToEnd(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 2})
	base := ts.URL
	sr := createSession(t, base, testSessionRequest())

	xs := make([]complex128, sr.Slots)
	for i := range xs {
		xs[i] = complex(0.05*float64(i%7), 0.01)
	}
	cx := encryptValues(t, base, sr.ID, xs)

	prog := fast.NewProgram().In("x").
		Rotate("r1", "x", 1).
		Rotate("r2", "x", 4).
		Add("s", "r1", "r2").
		MulConst("out", "s", 0.5).
		Return("out")
	if err := prog.Validate(); err != nil {
		t.Fatalf("program: %v", err)
	}
	raw, err := json.Marshal(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"version":2`) {
		t.Fatalf("marshaled program lacks version field: %s", raw)
	}

	var cr ciphertextResponse
	status, body := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval", nil,
		map[string]any{"inputs": map[string]string{"x": cx.Ciphertext}, "program": json.RawMessage(raw)}, &cr)
	if status != http.StatusOK {
		t.Fatalf("v2 eval status %d: %s", status, body)
	}

	got := decryptValues(t, base, sr.ID, cr.Ciphertext)
	for i := range xs {
		want := 0.5 * (xs[(i+1)%len(xs)] + xs[(i+4)%len(xs)])
		if math.Abs(real(got[i])-real(want)) > 1e-3 || math.Abs(imag(got[i])-imag(want)) > 1e-3 {
			t.Fatalf("slot %d: got %v, want %v", i, got[i], want)
		}
	}
}

// TestEvalV1ProgramStillAccepted exercises the legacy array shape end to end
// (the adapter path), including a per-op pinned method.
func TestEvalV1ProgramStillAccepted(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 1})
	base := ts.URL
	sr := createSession(t, base, testSessionRequest())

	xs := make([]complex128, sr.Slots)
	for i := range xs {
		xs[i] = complex(0.2, -0.1)
	}
	cx := encryptValues(t, base, sr.ID, xs)

	var cr ciphertextResponse
	status, body := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval", nil,
		evalRequest{
			Inputs: map[string]string{"x": cx.Ciphertext},
			Program: []progOp{
				{Op: "rotate", A: "x", R: 1, Out: "r", Method: "klss"},
				{Op: "addconst", A: "r", Value: 0.25, Out: "out"},
			},
			Output: "out",
		}, &cr)
	if status != http.StatusOK {
		t.Fatalf("v1 eval status %d: %s", status, body)
	}
	got := decryptValues(t, base, sr.ID, cr.Ciphertext)
	for i := range got {
		want := xs[(i+1)%len(xs)] + 0.25
		if math.Abs(real(got[i])-real(want)) > 1e-3 || math.Abs(imag(got[i])-imag(want)) > 1e-3 {
			t.Fatalf("slot %d: got %v, want %v", i, got[i], want)
		}
	}
}

// TestEvalSequentialModeMatchesBatched runs the same request through the
// batched daemon and a -sequential daemon and requires byte-identical
// ciphertexts: the operational escape hatch must not change results.
func TestEvalSequentialModeMatchesBatched(t *testing.T) {
	run := func(sequential bool) string {
		_, ts := newTestDaemon(t, daemonConfig{Workers: 1, Sequential: sequential})
		defer ts.Close()
		base := ts.URL
		sr := createSession(t, base, testSessionRequest())
		xs, ys := chaosInputs(sr.Slots)
		cx := encryptValues(t, base, sr.ID, xs)
		cy := encryptValues(t, base, sr.ID, ys)
		var cr ciphertextResponse
		status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval", nil,
			chaosProgram(cx.Ciphertext, cy.Ciphertext), &cr)
		if status != http.StatusOK {
			t.Fatalf("sequential=%v: status %d: %s", sequential, status, raw)
		}
		return cr.Ciphertext
	}
	if run(false) != run(true) {
		t.Fatal("batched and sequential daemons disagree on the same request")
	}
}
