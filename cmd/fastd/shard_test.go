package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/serve"
)

// readyzView mirrors the /readyz document for test assertions.
type readyzView struct {
	Ready      bool             `json:"ready"`
	Breaker    string           `json:"breaker"`
	LiveShards int              `json:"live_shards"`
	Shards     []shardReadiness `json:"shards"`
	Sessions   sessionReadiness `json:"sessions"`
	Evk        evkReadiness     `json:"evk"`
}

func getReadyz(t *testing.T, base string) (int, readyzView) {
	t.Helper()
	var rv readyzView
	status, raw := doJSON(t, http.MethodGet, base+"/readyz", nil, nil, &rv)
	if status != http.StatusOK && status != http.StatusServiceUnavailable {
		t.Fatalf("readyz: status %d: %s", status, raw)
	}
	return status, rv
}

// TestShardSessionDistribution: with several shards, sessions spread across
// them, the create response names the owning shard, and /readyz's per-shard
// resident counts reconcile with the global view.
func TestShardSessionDistribution(t *testing.T) {
	d, ts := newTestDaemon(t, daemonConfig{Shards: 3, MaxSessions: 32})
	base := ts.URL

	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		sr := createSession(t, base, testSessionRequest())
		if sr.Shard < 0 || sr.Shard >= 3 {
			t.Fatalf("session %s reports shard %d, want 0..2", sr.ID, sr.Shard)
		}
		seen[sr.Shard]++
	}
	if len(seen) < 2 {
		t.Fatalf("8 sessions all landed on one shard: %v", seen)
	}
	status, rv := getReadyz(t, base)
	if status != http.StatusOK || !rv.Ready {
		t.Fatalf("readyz not ready: %d %+v", status, rv)
	}
	if rv.LiveShards != 3 || len(rv.Shards) != 3 {
		t.Fatalf("live=%d shards=%d, want 3/3", rv.LiveShards, len(rv.Shards))
	}
	total := 0
	for _, s := range rv.Shards {
		if s.Fenced || s.Killed {
			t.Fatalf("shard %d unexpectedly fenced/killed", s.Shard)
		}
		if s.Resident != seen[s.Shard] {
			t.Fatalf("shard %d resident=%d, create responses said %d", s.Shard, s.Resident, seen[s.Shard])
		}
		total += s.Resident
	}
	if total != 8 || int(d.resident.Load()) != 8 {
		t.Fatalf("resident rollup %d / %d, want 8", total, d.resident.Load())
	}
}

// TestShardChaosKillShardFailover is the kill-a-shard acceptance drill: with
// three shards over one snapshot store, killing the shard that owns live
// sessions must (a) keep /readyz ready while reporting the fenced shard,
// (b) let survivors serve the dead shard's sessions with bit-identical
// results, (c) surface only typed ladder statuses during the window,
// (d) replay pre-kill idempotent responses exactly once, and (e) show
// cross-shard hits in the shared evk tier (the survivor reuses keys the dead
// shard's traffic filled).
func TestShardChaosKillShardFailover(t *testing.T) {
	d, ts := newTestDaemon(t, daemonConfig{
		Shards:      3,
		StateDir:    t.TempDir(),
		MaxSessions: 32,
	})
	base := ts.URL

	// Create sessions until every shard owns at least one.
	type tracked struct {
		sr    sessionResponse
		cx    ciphertextResponse
		cy    ciphertextResponse
		plain []complex128 // decrypt(cx) baseline
		eval  string       // pre-kill eval output ciphertext
	}
	var sessions []tracked
	byShard := map[int][]int{}
	for i := 0; len(byShard) < 3 && i < 32; i++ {
		sr := createSession(t, base, testSessionRequest())
		xs, ys := chaosInputs(sr.Slots)
		tr := tracked{
			sr: sr,
			cx: encryptValues(t, base, sr.ID, xs),
			cy: encryptValues(t, base, sr.ID, ys),
		}
		tr.plain = decryptValues(t, base, sr.ID, tr.cx.Ciphertext)
		var cr ciphertextResponse
		status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval",
			map[string]string{"Idempotency-Key": "prekill-" + sr.ID},
			chaosProgram(tr.cx.Ciphertext, tr.cy.Ciphertext), &cr)
		if status != http.StatusOK {
			t.Fatalf("pre-kill eval %s: status %d: %s", sr.ID, status, raw)
		}
		tr.eval = cr.Ciphertext
		sessions = append(sessions, tr)
		byShard[sr.Shard] = append(byShard[sr.Shard], len(sessions)-1)
	}
	if len(byShard) < 3 {
		t.Fatalf("could not populate all 3 shards: %v", byShard)
	}

	// Kill the shard owning session 0.
	victim := sessions[0].sr.Shard
	var kr struct {
		Shard  int  `json:"shard"`
		Killed bool `json:"killed"`
		Live   int  `json:"live"`
	}
	status, raw := doJSON(t, http.MethodPost, fmt.Sprintf("%s/debug/shards/%d/kill", base, victim), nil, nil, &kr)
	if status != http.StatusOK || !kr.Killed || kr.Live != 2 {
		t.Fatalf("kill shard %d: status %d %+v: %s", victim, status, kr, raw)
	}

	// Readiness: the fenced shard is visible, the daemon stays ready.
	status, rv := getReadyz(t, base)
	if status != http.StatusOK || !rv.Ready {
		t.Fatalf("daemon lost readiness after single-shard kill: %d %+v", status, rv)
	}
	if rv.LiveShards != 2 {
		t.Fatalf("live_shards = %d, want 2", rv.LiveShards)
	}
	if !rv.Shards[victim].Fenced || !rv.Shards[victim].Killed {
		t.Fatalf("killed shard not reported fenced: %+v", rv.Shards[victim])
	}

	// Every session the dead shard owned must be served by survivors,
	// bit-identically, with only typed ladder statuses along the way.
	for _, idx := range byShard[victim] {
		tr := sessions[idx]
		// Decrypt the pre-kill ciphertext through the restored session: the
		// secret key surviving bit-exactly is the whole point of snapshots.
		var got []complex128
		deadline := time.Now().Add(10 * time.Second)
		for {
			var dr decryptResponse
			status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+tr.sr.ID+"/decrypt", nil,
				decryptRequest{Ciphertext: tr.cx.Ciphertext}, &dr)
			if status == http.StatusOK {
				got = toComplex(dr.Values)
				break
			}
			if status != http.StatusServiceUnavailable {
				t.Fatalf("failover decrypt %s: status %d (not a ladder rung): %s", tr.sr.ID, status, raw)
			}
			if time.Now().After(deadline) {
				t.Fatalf("failover decrypt %s: still 503 after 10s: %s", tr.sr.ID, raw)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if !chaosBitsEqual(got, tr.plain) {
			t.Fatalf("session %s: restored decrypt is not bit-identical", tr.sr.ID)
		}

		// A retry of the pre-kill eval with its Idempotency-Key must REPLAY
		// the journaled response (exactly-once), not recompute it.
		var cr ciphertextResponse
		status, raw = doJSON(t, http.MethodPost, base+"/v1/sessions/"+tr.sr.ID+"/eval",
			map[string]string{"Idempotency-Key": "prekill-" + tr.sr.ID},
			chaosProgram(tr.cx.Ciphertext, tr.cy.Ciphertext), &cr)
		if status != http.StatusOK {
			t.Fatalf("idempotent retry %s: status %d: %s", tr.sr.ID, status, raw)
		}
		if cr.Ciphertext != tr.eval {
			t.Fatalf("session %s: idempotent retry returned a different ciphertext", tr.sr.ID)
		}

		// A fresh eval (new computation, same program) must also match the
		// pre-kill result bit-for-bit: homomorphic evaluation is deterministic
		// given the restored keys.
		status, raw = doJSON(t, http.MethodPost, base+"/v1/sessions/"+tr.sr.ID+"/eval", nil,
			chaosProgram(tr.cx.Ciphertext, tr.cy.Ciphertext), &cr)
		if status != http.StatusOK {
			t.Fatalf("post-kill eval %s: status %d: %s", tr.sr.ID, status, raw)
		}
		if cr.Ciphertext != tr.eval {
			t.Fatalf("session %s: post-failover eval is not bit-identical to pre-kill", tr.sr.ID)
		}
	}

	// The survivor's eval traffic re-requested galois/relin keys the dead
	// shard's contexts had already pushed through the shared tier.
	_, rv = getReadyz(t, base)
	if rv.Evk.CrossShardHits == 0 {
		t.Fatal("no cross-shard evk hits after failover: shared tier is not shared")
	}
	if rv.Evk.ResidentBytes > rv.Evk.BudgetBytes {
		t.Fatalf("evk resident %d exceeds budget %d", rv.Evk.ResidentBytes, rv.Evk.BudgetBytes)
	}

	// Sessions on surviving shards were never interrupted.
	for sh, idxs := range byShard {
		if sh == victim {
			continue
		}
		for _, idx := range idxs {
			tr := sessions[idx]
			got := decryptValues(t, base, tr.sr.ID, tr.cx.Ciphertext)
			if !chaosBitsEqual(got, tr.plain) {
				t.Fatalf("survivor session %s: decrypt changed after another shard died", tr.sr.ID)
			}
		}
	}
	if d.mShardLost.Value() != 0 {
		t.Fatalf("%d sessions lost in a clean failover, want 0", d.mShardLost.Value())
	}
}

// TestShardRestoreVsEvictRaceChaos is the -race hammer for the
// restore-vs-evict window: many goroutines resolving one session while
// another goroutine keeps evicting it. Every resolve must succeed — never a
// 404 (the registry lost the ID) or a 410 (a healthy snapshot declared
// corrupt) — and restores must stay singleflighted (at most one restore per
// eviction).
func TestShardRestoreVsEvictRaceChaos(t *testing.T) {
	d, ts := newTestDaemon(t, daemonConfig{
		Shards:      2,
		StateDir:    t.TempDir(),
		MaxSessions: 8,
	})
	sr := createSession(t, ts.URL, testSessionRequest())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				_, s, err := d.resolve(sr.ID)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				if s.id != sr.ID {
					select {
					case errs <- fmt.Errorf("resolved wrong session %q", s.id):
					default:
					}
					return
				}
			}
		}()
	}
	evictorDone := make(chan struct{})
	go func() {
		defer close(evictorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh, s, err := d.resolve(sr.ID)
			if err != nil {
				select {
				case errs <- err:
				default:
				}
				return
			}
			d.evictSession(sh, s)
		}
	}()
	// The resolvers finish on their own; then the evictor is told to stop.
	resolversDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(resolversDone)
	}()
	select {
	case <-resolversDone:
	case <-time.After(30 * time.Second):
		t.Fatal("restore/evict hammer timed out")
	}
	close(stop)
	<-evictorDone
	select {
	case err := <-errs:
		t.Fatalf("restore/evict race surfaced an error: %v", err)
	default:
	}
	if r, e := d.mRestored.Value(), d.mEvicted.Value(); r > e {
		t.Fatalf("restores (%d) exceed evictions (%d): the restore singleflight leaked", r, e)
	}
}

// TestIdemJournalCompactionBounded (journal-bounded regression): the on-disk
// idempotency journal must stay within the in-memory window across repeated
// evict/restore cycles — restore compacts it — and entries that aged out of
// the window must not resurrect as replays.
func TestIdemJournalCompactionBounded(t *testing.T) {
	dir := t.TempDir()
	d, ts := newTestDaemon(t, daemonConfig{
		StateDir: dir,
		IdemCap:  4,
	})
	base := ts.URL
	sr := createSession(t, base, testSessionRequest())
	vals := fromComplex([]complex128{1, 2, 3, 4})

	journalLines := func() int {
		t.Helper()
		f, err := os.Open(filepath.Join(dir, sr.ID+".idem"))
		if err != nil {
			if os.IsNotExist(err) {
				return 0
			}
			t.Fatal(err)
		}
		defer f.Close()
		n := 0
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			n++
		}
		return n
	}

	cycle := func(round int) {
		t.Helper()
		// 8 recorded outcomes against a table capped at 4: the append-only
		// journal grows past the cap...
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("r%d-k%d", round, i)
			status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/encrypt",
				map[string]string{"Idempotency-Key": key}, encryptRequest{Values: vals}, nil)
			if status != http.StatusOK {
				t.Fatalf("encrypt %s: status %d: %s", key, status, raw)
			}
		}
		if journalLines() < 8 {
			t.Fatalf("round %d: journal has %d lines before evict, want >= 8 appends", round, journalLines())
		}
		sh, s, err := d.resolve(sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !d.evictSession(sh, s) {
			t.Fatal("evict failed")
		}
		if got := journalLines(); got > d.cfg.IdemCap {
			t.Fatalf("round %d: journal holds %d lines after evict-compaction, cap is %d", round, got, d.cfg.IdemCap)
		}
		// Restore (first request faults it back in) and check replay
		// semantics: a key inside the surviving window replays; a key that
		// aged out re-executes.
		last := fmt.Sprintf("r%d-k7", round)
		resp := idemProbe(t, base, sr.ID, last, vals)
		if resp.Header.Get("Idempotency-Replayed") != "true" {
			t.Fatalf("round %d: key %s inside the window did not replay", round, last)
		}
		resp.Body.Close()
		first := fmt.Sprintf("r%d-k0", round)
		resp = idemProbe(t, base, sr.ID, first, vals)
		if resp.Header.Get("Idempotency-Replayed") == "true" {
			t.Fatalf("round %d: key %s beyond the bounded window resurrected as a replay", round, first)
		}
		resp.Body.Close()
		if got := journalLines(); got > d.cfg.IdemCap+2 {
			t.Fatalf("round %d: journal grew to %d lines after restore, cap %d (+2 probes)", round, got, d.cfg.IdemCap)
		}
	}
	for round := 0; round < 3; round++ {
		cycle(round)
	}
}

// idemProbe re-sends one idempotent encrypt and returns the raw response so
// the caller can inspect replay headers.
func idemProbe(t *testing.T, base, id, key string, vals []cnum) *http.Response {
	t.Helper()
	raw, err := json.Marshal(encryptRequest{Values: vals})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions/"+id+"/encrypt", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idem probe %s: status %d", key, resp.StatusCode)
	}
	return resp
}

// TestShardBreakerGaugeTransitionsFault (per-shard breaker observability):
// the serve.breaker.state{shard=N} gauge must track the full
// open → half-open → closed recovery arc, and a neighbor shard's gauge must
// not move.
func TestShardBreakerGaugeTransitionsFault(t *testing.T) {
	ob := fast.NewObserver()
	d, err := newDaemon(daemonConfig{
		Shards:           2,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Millisecond,
		Observer:         ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.drain(context.Background()) })
	reg := ob.Registry()
	g0 := reg.Gauge("serve.breaker.state{shard=0}")
	g1 := reg.Gauge("serve.breaker.state{shard=1}")

	if g0.Value() != int64(serve.BreakerClosed) {
		t.Fatalf("initial gauge = %d, want closed", g0.Value())
	}
	b := d.shards[0].breaker
	b.RecordFailure()
	if g0.Value() != int64(serve.BreakerClosed) {
		t.Fatalf("gauge moved below threshold: %d", g0.Value())
	}
	b.RecordFailure()
	if g0.Value() != int64(serve.BreakerOpen) {
		t.Fatalf("gauge = %d after trip, want open (%d)", g0.Value(), serve.BreakerOpen)
	}
	time.Sleep(15 * time.Millisecond)
	ok, probe := b.AllowProbe()
	if !ok || !probe {
		t.Fatalf("AllowProbe after cooldown = (%v,%v), want the probe slot", ok, probe)
	}
	if g0.Value() != int64(serve.BreakerHalfOpen) {
		t.Fatalf("gauge = %d during probe, want half-open (%d)", g0.Value(), serve.BreakerHalfOpen)
	}
	b.RecordSuccess()
	if g0.Value() != int64(serve.BreakerClosed) {
		t.Fatalf("gauge = %d after probe success, want closed", g0.Value())
	}
	if g1.Value() != int64(serve.BreakerClosed) {
		t.Fatalf("shard 1 gauge moved to %d while shard 0 cycled", g1.Value())
	}
}
