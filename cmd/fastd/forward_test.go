package main

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastfhe/fast/internal/obs"
)

func TestSessionIDExtraction(t *testing.T) {
	cases := map[string]string{
		"/v1/sessions/s7/eval":    "s7",
		"/v1/sessions/s7/encrypt": "s7",
		"/v1/sessions/s7":         "s7",
		"/v1/sessions":            "", // create: always local
		"/v1/sessions/":           "",
		"/readyz":                 "",
		"/debug/shards/0/kill":    "",
	}
	for path, want := range cases {
		if got := sessionID(path); got != want {
			t.Errorf("sessionID(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" http://a:1 ,, http://b:2,")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitPeers = %#v", got)
	}
	if splitPeers("") != nil {
		t.Fatal("empty -peers must yield nil")
	}
}

// newTestForwarder builds a two-node forwarder whose peer 1 is the given
// backend, with fast timeouts for tests.
func newTestForwarder(backend string) (*forwarder, *obs.Registry) {
	reg := obs.NewRegistry()
	f := newForwarder([]string{"http://self.invalid", backend}, reg, slog.New(slog.NewTextHandler(io.Discard, nil)))
	f.perAttempt = 2 * time.Second
	return f, reg
}

// remoteID returns a session ID the forwarder's ring assigns to peer 1.
func remoteID(f *forwarder) string {
	for i := 0; i < 1000; i++ {
		id := "s" + strconv.Itoa(i)
		if f.owner(id) == 1 {
			return id
		}
	}
	panic("no ID hashed to peer 1 in 1000 tries")
}

// localID returns a session ID the forwarder keeps on this node.
func localID(f *forwarder) string {
	for i := 0; i < 1000; i++ {
		id := "s" + strconv.Itoa(i)
		if f.owner(id) == 0 {
			return id
		}
	}
	panic("no ID hashed to peer 0 in 1000 tries")
}

// TestForwardRoutesRemoteSessions: a session owned by the peer is proxied
// (with the forwarding hop marked); a local session and non-session paths
// fall through to the local handler.
func TestForwardRoutesRemoteSessions(t *testing.T) {
	var peerHits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peerHits.Add(1)
		if r.Header.Get("X-Forwarded-By") == "" {
			t.Error("proxied request lacks X-Forwarded-By")
		}
		w.Header().Set("X-Served-By", "peer1")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer backend.Close()
	f, _ := newTestForwarder(backend.URL)

	var localHits atomic.Int64
	h := f.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		localHits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	front := httptest.NewServer(h)
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/sessions/"+remoteID(f)+"/eval", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Served-By") != "peer1" {
		t.Fatal("remote session was not proxied to its owner")
	}
	if peerHits.Load() != 1 || localHits.Load() != 0 {
		t.Fatalf("peer=%d local=%d after remote request, want 1/0", peerHits.Load(), localHits.Load())
	}

	for _, path := range []string{"/v1/sessions/" + localID(f) + "/eval", "/v1/sessions", "/readyz"} {
		resp, err := http.Post(front.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if peerHits.Load() != 1 {
		t.Fatalf("local paths leaked to the peer (%d hits)", peerHits.Load())
	}
	if localHits.Load() != 3 {
		t.Fatalf("local handler saw %d requests, want 3", localHits.Load())
	}
}

// TestForwardOneHopMax: a request that already carries the forwarding marker
// is served locally even when the ring says the peer owns it — the peer lists
// disagree, and ping-ponging would not fix that.
func TestForwardOneHopMax(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("second forwarding hop attempted")
	}))
	defer backend.Close()
	f, _ := newTestForwarder(backend.URL)
	served := false
	h := f.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served = true
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+remoteID(f)+"/eval", nil)
	req.Header.Set("X-Forwarded-By", "http://other.invalid")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if !served {
		t.Fatal("already-forwarded request was not served locally")
	}
}

// TestForwardRetriesIdempotent: transient peer failures (503) on an
// idempotent request are retried with backoff until success, within the
// attempt budget.
func TestForwardRetriesIdempotent(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()
	f, reg := newTestForwarder(backend.URL)
	h := f.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("remote request served locally")
	}))
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+remoteID(f)+"/eval", nil)
	req.Header.Set("Idempotency-Key", "retry-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after retries, want 200", rec.Code)
	}
	if calls.Load() != 3 {
		t.Fatalf("peer saw %d attempts, want 3", calls.Load())
	}
	if v := reg.Counter("fastd.forward.retries").Value(); v != 2 {
		t.Fatalf("retry counter = %d, want 2", v)
	}
}

// TestForwardNoRetryWithoutIdempotency: a mutation with no Idempotency-Key
// must reach the peer exactly once — its failure is surfaced, never silently
// re-executed.
func TestForwardNoRetryWithoutIdempotency(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer backend.Close()
	f, _ := newTestForwarder(backend.URL)
	h := f.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+remoteID(f)+"/eval", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the peer's 503 surfaced", rec.Code)
	}
	if calls.Load() != 1 {
		t.Fatalf("non-idempotent request reached the peer %d times, want exactly 1", calls.Load())
	}
}

// TestForwardHedgedRetry: when the first attempt of an idempotent request is
// slow, at most one hedged duplicate races it and the fast answer wins.
func TestForwardHedgedRetry(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first attempt wedges until the test ends
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"hedged":true}`))
	}))
	defer backend.Close()
	defer close(release)
	f, reg := newTestForwarder(backend.URL)
	f.hedgeAfter = 10 * time.Millisecond
	h := f.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+remoteID(f)+"/eval", nil)
	req.Header.Set("Idempotency-Key", "hedge-1")
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hedged request did not complete while the original was wedged")
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want the hedge's 200", rec.Code)
	}
	if v := reg.Counter("fastd.forward.hedges").Value(); v != 1 {
		t.Fatalf("hedge counter = %d, want exactly 1", v)
	}
	if calls.Load() != 2 {
		t.Fatalf("peer saw %d attempts, want original + one hedge", calls.Load())
	}
}
