package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	fast "github.com/fastfhe/fast"
)

// testConfig mirrors the root chaos suite's parameter point: small enough to
// keygen in tens of milliseconds, rich enough (rotations, conjugation, KLSS)
// to exercise every program op.
func testSessionRequest() sessionRequest {
	return sessionRequest{
		LogN:        9,
		Levels:      3,
		LogScale:    36,
		Rotations:   []int{1, -1, 4},
		Conjugation: true,
		EnableKLSS:  true,
		Seed:        7,
	}
}

func newTestDaemon(t *testing.T, cfg daemonConfig) (*daemon, *httptest.Server) {
	t.Helper()
	if cfg.Observer == nil {
		cfg.Observer = fast.NewObserver()
	}
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.handler())
	t.Cleanup(ts.Close)
	return d, ts
}

// doJSON posts body as JSON (or GETs when body is nil) and decodes the reply
// into out (when non-nil). It returns the HTTP status and raw body.
func doJSON(t *testing.T, method, url string, hdr map[string]string, body, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, raw
}

func createSession(t *testing.T, base string, req sessionRequest) sessionResponse {
	t.Helper()
	var sr sessionResponse
	status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions", nil, req, &sr)
	if status != http.StatusOK {
		t.Fatalf("create session: status %d: %s", status, raw)
	}
	if sr.ID == "" || sr.Slots <= 0 {
		t.Fatalf("create session: bad response %+v", sr)
	}
	return sr
}

func encryptValues(t *testing.T, base, id string, vals []complex128) ciphertextResponse {
	t.Helper()
	var cr ciphertextResponse
	status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+id+"/encrypt", nil,
		encryptRequest{Values: fromComplex(vals)}, &cr)
	if status != http.StatusOK {
		t.Fatalf("encrypt: status %d: %s", status, raw)
	}
	return cr
}

func decryptValues(t *testing.T, base, id, ct string) []complex128 {
	t.Helper()
	var dr decryptResponse
	status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+id+"/decrypt", nil,
		decryptRequest{Ciphertext: ct}, &dr)
	if status != http.StatusOK {
		t.Fatalf("decrypt: status %d: %s", status, raw)
	}
	return toComplex(dr.Values)
}

// TestDaemonEndToEnd drives the full client lifecycle over HTTP: session
// create, encrypt, a multi-op program (mul, rotate, conjugate, addconst),
// decrypt, delete — and checks the decrypted result against the plaintext
// computation.
func TestDaemonEndToEnd(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 2})
	base := ts.URL

	sr := createSession(t, base, testSessionRequest())
	n := sr.Slots

	x := make([]complex128, n)
	y := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = complex(0.5*math.Cos(float64(i)), 0.25*math.Sin(float64(i)))
		y[i] = complex(0.3+0.001*float64(i%17), -0.2)
	}
	cx := encryptValues(t, base, sr.ID, x)
	cy := encryptValues(t, base, sr.ID, y)

	// t = x*y; r = rotate(t, 1); c = conj(r) via KLSS; out = c + 0.125
	prog := evalRequest{
		Inputs: map[string]string{"x": cx.Ciphertext, "y": cy.Ciphertext},
		Program: []progOp{
			{Op: "mul", A: "x", B: "y", Out: "t"},
			{Op: "rotate", A: "t", R: 1, Out: "r"},
			{Op: "conjugate", A: "r", Out: "c", Method: "klss"},
			{Op: "addconst", A: "c", Value: 0.125, Out: "out"},
		},
		Output: "out",
	}
	var cr ciphertextResponse
	status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval", nil, prog, &cr)
	if status != http.StatusOK {
		t.Fatalf("eval: status %d: %s", status, raw)
	}
	got := decryptValues(t, base, sr.ID, cr.Ciphertext)
	if len(got) != n {
		t.Fatalf("decrypt returned %d slots, want %d", len(got), n)
	}
	conj := func(v complex128) complex128 { return complex(real(v), -imag(v)) }
	for i := 0; i < n; i++ {
		want := conj(x[(i+1)%n]*y[(i+1)%n]) + 0.125
		if d := got[i] - want; math.Hypot(real(d), imag(d)) > 1e-3 {
			t.Fatalf("slot %d: got %v, want %v", i, got[i], want)
		}
	}

	// Delete drops the keyspace; subsequent use is a 404.
	status, _ = doJSON(t, http.MethodDelete, base+"/v1/sessions/"+sr.ID, nil, nil, nil)
	if status != http.StatusNoContent {
		t.Fatalf("delete session: status %d", status)
	}
	status, _ = doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/encrypt", nil,
		encryptRequest{Values: fromComplex(x[:1])}, nil)
	if status != http.StatusNotFound {
		t.Fatalf("encrypt after delete: status %d, want 404", status)
	}
}

// TestDaemonValidation exercises the 400/404 surface: malformed JSON, unknown
// sessions, undefined registers, unknown ops and methods, bad ciphertexts and
// bad fault scenarios must all be rejected before the worker pool.
func TestDaemonValidation(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 1})
	base := ts.URL
	sr := createSession(t, base, testSessionRequest())
	ct := encryptValues(t, base, sr.ID, make([]complex128, sr.Slots))

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"bad session json", "POST", "/v1/sessions", "not an object", http.StatusBadRequest},
		{"bad fault scenario", "POST", "/v1/sessions", sessionRequest{LogN: 9, Levels: 2, LogScale: 36, FaultScenario: "earthquake"}, http.StatusBadRequest},
		{"unknown session eval", "POST", "/v1/sessions/nope/eval", evalRequest{}, http.StatusNotFound},
		{"unknown session delete", "DELETE", "/v1/sessions/nope", nil, http.StatusNotFound},
		{"empty program", "POST", "/v1/sessions/" + sr.ID + "/eval",
			evalRequest{Inputs: map[string]string{"x": ct.Ciphertext}, Output: "x"}, http.StatusBadRequest},
		{"missing output", "POST", "/v1/sessions/" + sr.ID + "/eval",
			evalRequest{Inputs: map[string]string{"x": ct.Ciphertext},
				Program: []progOp{{Op: "addconst", A: "x", Value: 1, Out: "y"}}}, http.StatusBadRequest},
		{"undefined register", "POST", "/v1/sessions/" + sr.ID + "/eval",
			evalRequest{Inputs: map[string]string{"x": ct.Ciphertext},
				Program: []progOp{{Op: "add", A: "x", B: "ghost", Out: "y"}}, Output: "y"}, http.StatusBadRequest},
		{"unknown op", "POST", "/v1/sessions/" + sr.ID + "/eval",
			evalRequest{Inputs: map[string]string{"x": ct.Ciphertext},
				Program: []progOp{{Op: "teleport", A: "x", Out: "y"}}, Output: "y"}, http.StatusBadRequest},
		{"unknown method", "POST", "/v1/sessions/" + sr.ID + "/eval",
			evalRequest{Inputs: map[string]string{"x": ct.Ciphertext},
				Program: []progOp{{Op: "rotate", A: "x", R: 1, Out: "y", Method: "quantum"}}, Output: "y"}, http.StatusBadRequest},
		{"bad input ciphertext", "POST", "/v1/sessions/" + sr.ID + "/eval",
			evalRequest{Inputs: map[string]string{"x": "!!!not base64!!!"},
				Program: []progOp{{Op: "addconst", A: "x", Value: 1, Out: "y"}}, Output: "y"}, http.StatusBadRequest},
		{"bad decrypt ciphertext", "POST", "/v1/sessions/" + sr.ID + "/decrypt",
			decryptRequest{Ciphertext: "AAAA"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, raw := doJSON(t, tc.method, base+tc.path, nil, tc.body, nil)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, raw)
		}
	}
}

// TestDaemonSessionLimit: the registry bounds live keyspaces; the excess
// create is refused with 429, and deleting a session frees the slot.
func TestDaemonSessionLimit(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 1, MaxSessions: 1})
	base := ts.URL
	sr := createSession(t, base, testSessionRequest())

	status, _ := doJSON(t, http.MethodPost, base+"/v1/sessions", nil, testSessionRequest(), nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429", status)
	}
	if status, _ := doJSON(t, http.MethodDelete, base+"/v1/sessions/"+sr.ID, nil, nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete: status %d", status)
	}
	createSession(t, base, testSessionRequest()) // slot freed
}

// TestDaemonHealthEndpoints: healthz is always live, readyz reports the
// degradation state, and the observability surface exposes the admission
// instruments in Prometheus format.
func TestDaemonHealthEndpoints(t *testing.T) {
	d, ts := newTestDaemon(t, daemonConfig{Workers: 1})
	base := ts.URL

	status, raw := doJSON(t, http.MethodGet, base+"/healthz", nil, nil, nil)
	if status != http.StatusOK || !strings.Contains(string(raw), "ok") {
		t.Fatalf("healthz: status %d body %q", status, raw)
	}

	var ready struct {
		Ready    bool   `json:"ready"`
		Draining bool   `json:"draining"`
		Breaker  string `json:"breaker"`
	}
	status, _ = doJSON(t, http.MethodGet, base+"/readyz", nil, nil, &ready)
	if status != http.StatusOK || !ready.Ready || ready.Breaker != "closed" {
		t.Fatalf("readyz: status %d, %+v", status, ready)
	}

	createSession(t, base, testSessionRequest())
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, m := range []string{"serve_admitted", "serve_completed", "fastd_requests", "fastd_sessions"} {
		if !strings.Contains(string(body), m) {
			t.Errorf("/metrics missing %s:\n%.400s", m, body)
		}
	}

	// Drain: readyz flips to 503 and new work is refused as draining.
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	status, raw = doJSON(t, http.MethodGet, base+"/readyz", nil, nil, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d body %s", status, raw)
	}
	status, raw = doJSON(t, http.MethodPost, base+"/v1/sessions", nil, testSessionRequest(), nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: status %d body %s", status, raw)
	}
}

// TestDaemonDeadlineHeader: a provably unmeetable X-Deadline-Ms is shed on
// arrival (504) or, if the estimator has not yet calibrated, canceled
// mid-flight (408). Either way the request never returns a 200 with a result
// computed past its deadline.
func TestDaemonDeadlineHeader(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 1})
	base := ts.URL
	sr := createSession(t, base, testSessionRequest()) // also calibrates the estimator
	ct := encryptValues(t, base, sr.ID, make([]complex128, sr.Slots))

	prog := evalRequest{
		Inputs: map[string]string{"x": ct.Ciphertext},
		Program: []progOp{
			{Op: "mul", A: "x", B: "x", Out: "t"},
			{Op: "rotate", A: "t", R: 1, Out: "y"},
		},
		Output: "y",
	}
	start := time.Now()
	status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval",
		map[string]string{"X-Deadline-Ms": "1"}, prog, nil)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout && status != http.StatusRequestTimeout {
		t.Fatalf("1ms-deadline eval: status %d, want 504 or 408 (%s)", status, raw)
	}
	if status == http.StatusGatewayTimeout && elapsed > 100*time.Millisecond {
		t.Errorf("shed response took %v, want fast rejection", elapsed)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &errBody); err != nil || errBody.Error == "" {
		t.Fatalf("rejection body is not a typed error: %q", raw)
	}
}

// TestRunServeDrain exercises the real main-loop wiring through the test
// hooks: run() binds a port, serves a session create + healthz, then drains
// cleanly on the simulated signal.
func TestRunServeDrain(t *testing.T) {
	oldStarted, oldWait := httpStarted, httpWait
	defer func() { httpStarted, httpWait = oldStarted, oldWait }()

	var addr net.Addr
	httpStarted = func(a net.Addr) { addr = a }
	httpWait = func() {
		if addr == nil {
			t.Fatal("httpStarted not called before httpWait")
		}
		base := "http://" + addr.String()
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: status %d", resp.StatusCode)
		}
		createSession(t, base, testSessionRequest())
	}

	var out bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "10s"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"fastd serving on", "fastd draining", "fastd stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDaemonMissingFlagError keeps flag parsing honest.
func TestDaemonMissingFlagError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("run with unknown flag: want error")
	}
}
