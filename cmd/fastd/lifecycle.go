package main

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/obs"
	shardpkg "github.com/fastfhe/fast/internal/shard"
)

// Session lifecycle: create → (snapshot) → serve ⇄ evict/restore → expire,
// now across N shards.
//
// A session is in exactly one of three registry states:
//
//	resident   in exactly one shard's map, recorded in d.owners: fully
//	           expanded Context, serving requests directly on that shard;
//	persisted  in d.persisted: snapshot on disk only — evicted under resident
//	           pressure / idle TTL, not yet faulted in after a restart, or
//	           migrated off a fenced shard;
//	corrupt    in d.corrupt: the snapshot failed integrity validation; the ID
//	           is tombstoned (410 Gone) so a bad file can never serve a wrong
//	           decrypt, and the daemon keeps running.
//
// Transitions are lazy and request-driven: nothing is restored at startup
// (scan() only recovers IDs), the first request for a persisted session pays
// the restore, and eviction is triggered by create/restore overshoot or the
// idle sweeper. Restores are singleflighted per ID — a stampede of requests
// for one cold session performs one deserialisation.
//
// The owner table is what makes failover correct: a session is served through
// whichever shard currently HOLDS it, which is the ring-routed shard in steady
// state but may be a survivor after its home shard was fenced (and stays the
// survivor after an unfence, until eviction lets it drift home). Routing by
// ring alone would either lose track of failed-over residents or snap them
// back across shards mid-request.

// errUnknownSession is the typed miss for a session ID with no resident
// entry, no snapshot and no tombstone — mapped to 404 by the error ladder.
var errUnknownSession = errors.New("unknown session")

// resolve maps a session ID to (holding shard, session). The resident path is
// a map read under the registry locks; a persisted ID pays a singleflighted
// restore onto its ring-routed live shard. A resident session whose holding
// shard has been fenced — the window between the ring fencing and onFence
// migrating the registry — returns ErrShardDown (503 + Retry-After): the
// retry finds the snapshot back in the persisted set and restores it on a
// survivor.
func (d *daemon) resolve(id string) (*evalShard, *session, error) {
	for {
		d.mu.Lock()
		if sh := d.owners[id]; sh != nil {
			if sh.fenced() {
				d.mu.Unlock()
				d.mShardDown.Inc()
				return nil, nil, fmt.Errorf("session %q: %w", id, shardpkg.ErrShardDown)
			}
			sh.mu.RLock()
			s := sh.sessions[id]
			sh.mu.RUnlock()
			d.mu.Unlock()
			if s == nil {
				// owners and sh.sessions are updated together under both
				// locks, so this cannot persist — re-read.
				continue
			}
			d.touch(sh, s)
			return sh, s, nil
		}
		if _, bad := d.corrupt[id]; bad {
			d.mu.Unlock()
			return nil, nil, fmt.Errorf("session %q: %w", id, fast.ErrCorruptSnapshot)
		}
		if _, onDisk := d.persisted[id]; !onDisk || d.store == nil {
			d.mu.Unlock()
			return nil, nil, fmt.Errorf("%w %q", errUnknownSession, id)
		}
		// Restore lands on the ring-routed shard — the canonical home among
		// the currently-live members (after a fence this is a survivor; after
		// an unfence it is the original home again).
		home, err := d.ring.Owner(id)
		if err != nil {
			d.mu.Unlock()
			d.mShardDown.Inc()
			return nil, nil, err
		}
		sh := d.shards[home]
		sh.mu.Lock()
		if ch, inflight := sh.restoring[id]; inflight {
			sh.mu.Unlock()
			d.mu.Unlock()
			<-ch // another request is already restoring; wait and re-check
			continue
		}
		ch := make(chan struct{})
		sh.restoring[id] = ch
		sh.mu.Unlock()
		d.mu.Unlock()

		s, err := d.restoreSession(sh, id) // disk + NTT tables; never under locks
		d.mu.Lock()
		sh.mu.Lock()
		delete(sh.restoring, id)
		if err != nil {
			if errors.Is(err, fast.ErrCorruptSnapshot) {
				// Tombstone: the file stays on disk for forensics but the ID
				// will never be restored — wrong decrypts are impossible. The
				// occupancy slot is released: a tombstone holds no keys.
				d.corrupt[id] = struct{}{}
				delete(d.persisted, id)
				d.mCorrupt.Inc()
				d.occupancy.Add(-1)
			}
			sh.mu.Unlock()
			d.mu.Unlock()
			close(ch)
			d.logger.Warn("session restore failed", "session", id, "error", err.Error())
			return nil, nil, err
		}
		if d.ring.Fenced(sh.id) {
			// The shard was fenced while the restore ran; onFence could not
			// see the half-born session. Discard it — the snapshot stays in
			// the persisted set, and the retry restores on a survivor.
			sh.mu.Unlock()
			d.mu.Unlock()
			close(ch)
			d.mShardDown.Inc()
			return nil, nil, fmt.Errorf("session %q: %w", id, shardpkg.ErrShardDown)
		}
		delete(d.persisted, id)
		sh.sessions[id] = s
		d.owners[id] = sh
		s.lruEl = sh.lru.PushFront(s)
		s.lastUsed = time.Now()
		sh.mu.Unlock()
		d.mu.Unlock()
		close(ch)
		d.mRestored.Inc()
		d.mSessionCount.Set(d.resident.Add(1))
		d.updateOccupancy()
		d.logger.Info("session restored", "session", id, "shard", sh.id, "restores", s.meta.Restores)
		d.enforceResident(sh)
		return sh, s, nil
	}
}

// restoreSession rebuilds one session from its snapshot: checksum-verified
// decode, a Restores bump (fresh encryptor randomness epoch — a restored
// session must never replay pre-crash encryption randomness), key expansion
// against the deterministically recompiled parameters, and an idempotency
// table rebuilt from the journal. The bumped metadata is re-persisted so the
// NEXT crash also lands on a fresh epoch, and the journal is compacted to the
// rebuilt table's bounded window so repeated evict/restore cycles cannot grow
// it without bound.
func (d *daemon) restoreSession(sh *evalShard, id string) (*session, error) {
	snap, err := d.store.loadSnapshot(id)
	if err != nil {
		return nil, err
	}
	snap.Meta.Restores++
	opts := []fast.Option{
		fast.WithObserver(d.observer),
		// The restored context subscribes to the shared evk tier under the
		// RESTORING shard's tag: after a failover the survivor's lookups hit
		// entries the fenced shard filled — the cross-shard reuse the shared
		// tier exists for.
		fast.WithEvkCache(d.evk, id, sh.id),
	}
	if fs := snap.Meta.FaultScenario; fs != "" && fs != "none" {
		plan, err := fast.FaultScenario(fs)
		if err != nil {
			return nil, fmt.Errorf("session %q fault scenario: %w", id, err)
		}
		opts = append(opts, fast.WithFaultPlan(plan))
	}
	fctx, err := snap.Restore(opts...)
	if err != nil {
		return nil, err
	}
	sess := &session{
		id:    id,
		ctx:   fctx,
		cm:    costmodel.ForContext(snap.Config.LogN, fctx.MaxLevel()),
		plans: newPlanCache(planCacheCap, d.mPlanHits, d.mPlanMisses),
		idem:  newIdemTable(d.cfg.IdemCap),
		meta:  snap.Meta,
	}
	for _, rec := range d.store.loadIdem(id) {
		sess.idem.insert(rec)
	}
	// Compaction on restore: the journal on disk may hold every append since
	// the last evict (or arbitrarily many across crash loops); rewrite it to
	// exactly the surviving window so the file stays bounded by IdemCap.
	if err := d.store.rewriteIdem(id, sess.idem.records()); err != nil {
		d.logger.Warn("idempotency journal compaction failed", "session", id, "error", err.Error())
	}
	sess.persisted = d.store.saveSnapshotRetry(fctx, sess.meta) == nil
	return sess, nil
}

// touch marks a session recently used (LRU front + idle clock reset) on its
// holding shard.
func (d *daemon) touch(sh *evalShard, s *session) {
	if d.store == nil {
		return
	}
	sh.mu.Lock()
	if s.lruEl != nil {
		sh.lru.MoveToFront(s.lruEl)
	}
	s.lastUsed = time.Now()
	sh.mu.Unlock()
}

// enforceResident evicts least-recently-used sessions from one shard until
// its resident count is within its slice of MaxResident. Called after every
// create and restore on that shard.
func (d *daemon) enforceResident(sh *evalShard) {
	if d.store == nil {
		return
	}
	for {
		sh.mu.RLock()
		over := len(sh.sessions) > sh.maxResident
		var victim *session
		if over {
			if el := sh.lru.Back(); el != nil {
				victim = el.Value.(*session)
			}
		}
		sh.mu.RUnlock()
		if victim == nil {
			return
		}
		if !d.evictSession(sh, victim) {
			return // victim unpersistable: durability beats the memory bound
		}
	}
}

// evictSession releases one resident session to disk: snapshot-if-dirty,
// journal compaction to the bounded in-memory window, then an atomic
// resident→persisted registry flip (shard map + owner table together) and
// plan-cache drop. Returns false when the session could not be persisted —
// losing key material to enforce a memory bound is never acceptable, so the
// session stays resident (counted via fastd.store.write_failures).
func (d *daemon) evictSession(sh *evalShard, victim *session) bool {
	victim.mu.Lock()
	dirty := !victim.persisted
	victim.mu.Unlock()
	if dirty {
		if d.store.saveSnapshotRetry(victim.ctx, victim.meta) != nil {
			return false
		}
		victim.mu.Lock()
		victim.persisted = true
		victim.mu.Unlock()
	}
	if err := d.store.rewriteIdem(victim.id, victim.idem.records()); err != nil {
		d.logger.Warn("idempotency journal compaction failed", "session", victim.id, "error", err.Error())
	}

	d.mu.Lock()
	sh.mu.Lock()
	if victim.lruEl == nil {
		// A concurrent evict, delete or fence already claimed it.
		sh.mu.Unlock()
		d.mu.Unlock()
		return true
	}
	sh.lru.Remove(victim.lruEl)
	victim.lruEl = nil
	delete(sh.sessions, victim.id)
	delete(d.owners, victim.id)
	d.persisted[victim.id] = struct{}{}
	sh.mu.Unlock()
	d.mu.Unlock()

	d.mPlanEvicted.Add(uint64(victim.plans.drop()))
	d.mEvicted.Inc()
	d.mSessionCount.Set(d.resident.Add(-1))
	d.updateOccupancy()
	d.logger.Info("session evicted", "session", victim.id, "shard", sh.id)
	return true
}

// sweepIdle is the idle-TTL loop: sessions untouched for SessionTTL are
// evicted to disk, shard by shard. Restore on next use is transparent (modulo
// latency), so the TTL reclaims key-set memory from abandoned keyspaces
// without a client-visible expiry.
func (d *daemon) sweepIdle() {
	defer close(d.sweepDone)
	interval := d.cfg.SessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-d.sweepStop:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-d.cfg.SessionTTL)
		for _, sh := range d.shards {
			var victims []*session
			sh.mu.RLock()
			for _, s := range sh.sessions {
				if s.lruEl != nil && s.lastUsed.Before(cutoff) {
					victims = append(victims, s)
				}
			}
			sh.mu.RUnlock()
			for _, s := range victims {
				d.evictSession(sh, s)
			}
		}
	}
}

// updateOccupancy refreshes the sessions.{resident,persisted} gauges.
func (d *daemon) updateOccupancy() {
	d.mu.Lock()
	per := len(d.persisted)
	d.mu.Unlock()
	d.mResident.Set(d.resident.Load())
	d.mPersisted.Set(int64(per))
}

// ---- Idempotent replay -----------------------------------------------------

// withIdempotency gives mutating endpoints exactly-once semantics keyed by
// the client's Idempotency-Key header:
//
//   - the first request for a key executes and its deterministic outcome
//     (200/400/404) is journaled — fsync'd — BEFORE the response is released;
//   - concurrent duplicates coalesce onto the first execution and replay its
//     outcome (marked Idempotency-Replayed: true);
//   - retries after a daemon crash replay from the journal rebuilt on session
//     restore: ordering guarantees a recorded response was durable first, so
//     "client saw a reply" implies "a retry replays that same reply";
//   - transient ladder outcomes (429/503/504/408/500) are never recorded —
//     the retry they invite must re-execute.
//
// Requests without the header bypass the table entirely.
func (d *daemon) withIdempotency(w http.ResponseWriter, r *http.Request, sess *session, h func(w http.ResponseWriter)) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" || sess.idem == nil {
		h(w)
		return
	}
	for {
		e, owner := sess.idem.begin(key)
		if !owner {
			select {
			case <-e.done:
			case <-r.Context().Done():
				d.writeAdmissionError(w, r, fmt.Errorf("awaiting idempotent duplicate: %w", fast.ErrCanceled))
				return
			}
			if e.status == 0 {
				continue // original execution was abandoned (transient): retry owns it now
			}
			d.mIdemReplays.Inc()
			obs.RequestFrom(r.Context()).SetOutcome("idem_replay")
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Idempotency-Replayed", "true")
			w.WriteHeader(e.status)
			_, _ = w.Write(e.body)
			return
		}

		rr := newResponseRecorder()
		h(rr)
		if rr.recordable() {
			// Durability BEFORE release: once the client can observe this
			// response, a post-crash retry must find its record.
			if d.store != nil {
				d.store.appendIdemRetry(sess.id, idemRecord{Key: key, Status: rr.status, Body: rr.body})
			}
			sess.idem.complete(e, rr.status, rr.body)
			d.mIdemRecorded.Inc()
		} else {
			sess.idem.abandon(e)
		}
		for k, vs := range rr.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rr.status)
		_, _ = w.Write(rr.body)
		return
	}
}
