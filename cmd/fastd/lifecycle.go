package main

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/obs"
)

// Session lifecycle: create → (snapshot) → serve ⇄ evict/restore → expire.
//
// A session is in exactly one of three registry states:
//
//	resident   in d.sessions (and on the LRU list): fully expanded Context,
//	           serving requests directly;
//	persisted  in d.persisted: snapshot on disk only — evicted under resident
//	           pressure / idle TTL, or not yet faulted in after a restart;
//	corrupt    in d.corrupt: the snapshot failed integrity validation; the ID
//	           is tombstoned (410 Gone) so a bad file can never serve a wrong
//	           decrypt, and the daemon keeps running.
//
// Transitions are lazy and request-driven: nothing is restored at startup
// (scan() only recovers IDs), the first request for a persisted session pays
// the restore, and eviction is triggered by create/restore overshoot or the
// idle sweeper. Restores are singleflighted per ID — a stampede of requests
// for one cold session performs one deserialisation.

// errUnknownSession is the typed miss for a session ID with no resident
// entry, no snapshot and no tombstone — mapped to 404 by the error ladder.
var errUnknownSession = errors.New("unknown session")

// getSession resolves a session ID: the resident fast path is two map reads
// under RLock; a persisted ID pays a singleflighted restore from disk.
func (d *daemon) getSession(id string) (*session, error) {
	d.mu.RLock()
	s, ok := d.sessions[id]
	d.mu.RUnlock()
	if ok {
		d.touch(s)
		return s, nil
	}
	if d.store == nil {
		return nil, fmt.Errorf("%w %q", errUnknownSession, id)
	}
	for {
		d.mu.Lock()
		if s, ok := d.sessions[id]; ok {
			d.mu.Unlock()
			d.touch(s)
			return s, nil
		}
		if _, bad := d.corrupt[id]; bad {
			d.mu.Unlock()
			return nil, fmt.Errorf("session %q: %w", id, fast.ErrCorruptSnapshot)
		}
		if _, onDisk := d.persisted[id]; !onDisk {
			d.mu.Unlock()
			return nil, fmt.Errorf("%w %q", errUnknownSession, id)
		}
		if ch, inflight := d.restoring[id]; inflight {
			d.mu.Unlock()
			<-ch // another request is already restoring; wait and re-check
			continue
		}
		ch := make(chan struct{})
		d.restoring[id] = ch
		d.mu.Unlock()

		s, err := d.restoreSession(id) // disk + NTT tables; never under d.mu
		d.mu.Lock()
		delete(d.restoring, id)
		if err != nil {
			if errors.Is(err, fast.ErrCorruptSnapshot) {
				// Tombstone: the file stays on disk for forensics but the ID
				// will never be restored — wrong decrypts are impossible.
				d.corrupt[id] = struct{}{}
				delete(d.persisted, id)
				d.mCorrupt.Inc()
			}
			d.mu.Unlock()
			close(ch)
			d.logger.Warn("session restore failed", "session", id, "error", err.Error())
			return nil, err
		}
		delete(d.persisted, id)
		d.sessions[id] = s
		s.lruEl = d.lru.PushFront(s)
		s.lastUsed = time.Now()
		n := len(d.sessions)
		d.mu.Unlock()
		close(ch)
		d.mRestored.Inc()
		d.mSessionCount.Set(int64(n))
		d.updateOccupancy()
		d.logger.Info("session restored", "session", id, "restores", s.meta.Restores)
		d.enforceResident()
		return s, nil
	}
}

// restoreSession rebuilds one session from its snapshot: checksum-verified
// decode, a Restores bump (fresh encryptor randomness epoch — a restored
// session must never replay pre-crash encryption randomness), key expansion
// against the deterministically recompiled parameters, and an idempotency
// table rebuilt from the journal. The bumped metadata is re-persisted so the
// NEXT crash also lands on a fresh epoch.
func (d *daemon) restoreSession(id string) (*session, error) {
	snap, err := d.store.loadSnapshot(id)
	if err != nil {
		return nil, err
	}
	snap.Meta.Restores++
	opts := []fast.Option{fast.WithObserver(d.observer)}
	if fs := snap.Meta.FaultScenario; fs != "" && fs != "none" {
		plan, err := fast.FaultScenario(fs)
		if err != nil {
			return nil, fmt.Errorf("session %q fault scenario: %w", id, err)
		}
		opts = append(opts, fast.WithFaultPlan(plan))
	}
	fctx, err := snap.Restore(opts...)
	if err != nil {
		return nil, err
	}
	sess := &session{
		id:    id,
		ctx:   fctx,
		cm:    costmodel.ForContext(snap.Config.LogN, fctx.MaxLevel()),
		plans: newPlanCache(planCacheCap, d.mPlanHits, d.mPlanMisses),
		idem:  newIdemTable(d.cfg.IdemCap),
		meta:  snap.Meta,
	}
	for _, rec := range d.store.loadIdem(id) {
		sess.idem.insert(rec)
	}
	sess.persisted = d.store.saveSnapshotRetry(fctx, sess.meta) == nil
	return sess, nil
}

// touch marks a session recently used (LRU front + idle clock reset).
func (d *daemon) touch(s *session) {
	if d.store == nil {
		return
	}
	d.mu.Lock()
	if s.lruEl != nil {
		d.lru.MoveToFront(s.lruEl)
	}
	s.lastUsed = time.Now()
	d.mu.Unlock()
}

// enforceResident evicts least-recently-used sessions until the resident
// count is within MaxResident. Called after every create and restore.
func (d *daemon) enforceResident() {
	if d.store == nil {
		return
	}
	for {
		d.mu.RLock()
		over := len(d.sessions) > d.cfg.MaxResident
		var victim *session
		if over {
			if el := d.lru.Back(); el != nil {
				victim = el.Value.(*session)
			}
		}
		d.mu.RUnlock()
		if victim == nil {
			return
		}
		if !d.evictSession(victim) {
			return // victim unpersistable: durability beats the memory bound
		}
	}
}

// evictSession releases one resident session to disk: snapshot-if-dirty,
// journal compaction to the bounded in-memory window, then an atomic
// resident→persisted registry flip and plan-cache drop. Returns false when
// the session could not be persisted — losing key material to enforce a
// memory bound is never acceptable, so the session stays resident (counted
// via fastd.store.write_failures).
func (d *daemon) evictSession(victim *session) bool {
	victim.mu.Lock()
	dirty := !victim.persisted
	victim.mu.Unlock()
	if dirty {
		if d.store.saveSnapshotRetry(victim.ctx, victim.meta) != nil {
			return false
		}
		victim.mu.Lock()
		victim.persisted = true
		victim.mu.Unlock()
	}
	if err := d.store.rewriteIdem(victim.id, victim.idem.records()); err != nil {
		d.logger.Warn("idempotency journal compaction failed", "session", victim.id, "error", err.Error())
	}

	d.mu.Lock()
	if victim.lruEl == nil {
		// A concurrent evict or delete already claimed it.
		d.mu.Unlock()
		return true
	}
	d.lru.Remove(victim.lruEl)
	victim.lruEl = nil
	delete(d.sessions, victim.id)
	d.persisted[victim.id] = struct{}{}
	n := len(d.sessions)
	d.mu.Unlock()

	d.mPlanEvicted.Add(uint64(victim.plans.drop()))
	d.mEvicted.Inc()
	d.mSessionCount.Set(int64(n))
	d.updateOccupancy()
	d.logger.Info("session evicted", "session", victim.id)
	return true
}

// sweepIdle is the idle-TTL loop: sessions untouched for SessionTTL are
// evicted to disk. Restore on next use is transparent (modulo latency), so
// the TTL reclaims key-set memory from abandoned keyspaces without a
// client-visible expiry.
func (d *daemon) sweepIdle() {
	defer close(d.sweepDone)
	interval := d.cfg.SessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-d.sweepStop:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-d.cfg.SessionTTL)
		var victims []*session
		d.mu.RLock()
		for _, s := range d.sessions {
			if s.lruEl != nil && s.lastUsed.Before(cutoff) {
				victims = append(victims, s)
			}
		}
		d.mu.RUnlock()
		for _, s := range victims {
			d.evictSession(s)
		}
	}
}

// updateOccupancy refreshes the sessions.{resident,persisted} gauges.
func (d *daemon) updateOccupancy() {
	d.mu.RLock()
	res, per := len(d.sessions), len(d.persisted)
	d.mu.RUnlock()
	d.mResident.Set(int64(res))
	d.mPersisted.Set(int64(per))
}

// ---- Idempotent replay -----------------------------------------------------

// withIdempotency gives mutating endpoints exactly-once semantics keyed by
// the client's Idempotency-Key header:
//
//   - the first request for a key executes and its deterministic outcome
//     (200/400/404) is journaled — fsync'd — BEFORE the response is released;
//   - concurrent duplicates coalesce onto the first execution and replay its
//     outcome (marked Idempotency-Replayed: true);
//   - retries after a daemon crash replay from the journal rebuilt on session
//     restore: ordering guarantees a recorded response was durable first, so
//     "client saw a reply" implies "a retry replays that same reply";
//   - transient ladder outcomes (429/503/504/408/500) are never recorded —
//     the retry they invite must re-execute.
//
// Requests without the header bypass the table entirely.
func (d *daemon) withIdempotency(w http.ResponseWriter, r *http.Request, sess *session, h func(w http.ResponseWriter)) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" || sess.idem == nil {
		h(w)
		return
	}
	for {
		e, owner := sess.idem.begin(key)
		if !owner {
			select {
			case <-e.done:
			case <-r.Context().Done():
				d.writeAdmissionError(w, r, fmt.Errorf("awaiting idempotent duplicate: %w", fast.ErrCanceled))
				return
			}
			if e.status == 0 {
				continue // original execution was abandoned (transient): retry owns it now
			}
			d.mIdemReplays.Inc()
			obs.RequestFrom(r.Context()).SetOutcome("idem_replay")
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Idempotency-Replayed", "true")
			w.WriteHeader(e.status)
			_, _ = w.Write(e.body)
			return
		}

		rr := newResponseRecorder()
		h(rr)
		if rr.recordable() {
			// Durability BEFORE release: once the client can observe this
			// response, a post-crash retry must find its record.
			if d.store != nil {
				d.store.appendIdemRetry(sess.id, idemRecord{Key: key, Status: rr.status, Body: rr.body})
			}
			sess.idem.complete(e, rr.status, rr.body)
			d.mIdemRecorded.Inc()
		} else {
			sess.idem.abandon(e)
		}
		for k, vs := range rr.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rr.status)
		_, _ = w.Write(rr.body)
		return
	}
}
