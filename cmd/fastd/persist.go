package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/obs"
)

// sessionStore is fastd's crash-safe persistence layer: one snapshot file per
// session (the fast.SessionSnapshot wire format — versioned, checksummed key
// material) plus an append-only idempotency journal. Every write is made
// durable before it is relied on:
//
//   - snapshots are written to a temp file, fsync'd, atomically renamed into
//     place, and the directory fsync'd — a crash at any point leaves either
//     the old snapshot or the new one, never a torn file;
//   - journal appends are fsync'd before the response that depends on them
//     is released to the client.
//
// Corruption is detected, never trusted: a snapshot that fails its checksum
// is skipped with a typed error (fast.ErrCorruptSnapshot) and counted — a
// wrong decrypt from a torn or bit-flipped file is structurally impossible.
//
// The store consults a fault.Injector (DiskWrite kind) so the chaos suite
// can exercise the degraded path: a failed durability write is retried once,
// then the session is served resident-only and the failure counted.
type sessionStore struct {
	dir    string
	inj    *fault.Injector
	logger *slog.Logger

	mWriteFailures *obs.Counter // fastd.store.write_failures (post-retry)
	mWriteFaults   *obs.Counter // fastd.store.write_faults (injected)
}

const (
	snapSuffix = ".snap"
	idemSuffix = ".idem"
)

// errInjectedDiskWrite is the synthetic error of a DiskWrite fault.
var errInjectedDiskWrite = errors.New("fastd: injected disk-write fault")

func openSessionStore(dir string, inj *fault.Injector, reg *obs.Registry, logger *slog.Logger) (*sessionStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fastd: state dir: %w", err)
	}
	st := &sessionStore{dir: dir, inj: inj, logger: logger}
	if reg != nil {
		st.mWriteFailures = reg.Counter("fastd.store.write_failures")
		st.mWriteFaults = reg.Counter("fastd.store.write_faults")
	}
	return st, nil
}

func (st *sessionStore) snapshotPath(id string) string { return filepath.Join(st.dir, id+snapSuffix) }
func (st *sessionStore) idemPath(id string) string     { return filepath.Join(st.dir, id+idemSuffix) }

// scan returns the session IDs with a snapshot on disk.
func (st *sessionStore) scan() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, snapSuffix) {
			ids = append(ids, strings.TrimSuffix(name, snapSuffix))
		}
	}
	return ids, nil
}

// checkFault surfaces an injected DiskWrite fault as a write error.
func (st *sessionStore) checkFault() error {
	if st.inj.DiskWriteFails() {
		st.mWriteFaults.Inc()
		return errInjectedDiskWrite
	}
	return nil
}

// saveSnapshot durably persists the session's full state under its ID:
// temp file, fsync, atomic rename, directory fsync. The write-ahead ordering
// (snapshot before the create response, journal append before the eval
// response) is what makes a SIGKILL at any instant recoverable.
func (st *sessionStore) saveSnapshot(fctx *fast.Context, meta fast.SessionMeta) error {
	if err := st.checkFault(); err != nil {
		return err
	}
	final := st.snapshotPath(meta.ID)
	tmp, err := os.CreateTemp(st.dir, meta.ID+".snap.tmp.*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := fctx.WriteSessionSnapshot(bw, meta); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	return st.syncDir()
}

// saveSnapshotRetry is saveSnapshot with the store's recovery policy: retry
// once, then count and report the failure. Callers decide whether a failure
// degrades (resident-only session) or aborts (nothing to serve without it).
func (st *sessionStore) saveSnapshotRetry(fctx *fast.Context, meta fast.SessionMeta) error {
	err := st.saveSnapshot(fctx, meta)
	if err == nil {
		return nil
	}
	if err = st.saveSnapshot(fctx, meta); err == nil {
		return nil
	}
	st.mWriteFailures.Inc()
	st.logger.Warn("session snapshot write failed", "session", meta.ID, "error", err.Error())
	return err
}

// loadSnapshot reads and checksum-verifies a session snapshot. Key material
// is not expanded yet — the caller bumps Meta.Restores first, then Restore()s.
func (st *sessionStore) loadSnapshot(id string) (*fast.SessionSnapshot, error) {
	data, err := os.ReadFile(st.snapshotPath(id))
	if err != nil {
		return nil, err
	}
	return fast.DecodeSessionSnapshot(data)
}

// remove deletes a session's snapshot and journal (best-effort; a missing
// file is not an error) and syncs the directory.
func (st *sessionStore) remove(id string) {
	for _, p := range []string{st.snapshotPath(id), st.idemPath(id)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
			st.logger.Warn("session state remove failed", "session", id, "path", p, "error", err.Error())
		}
	}
	_ = st.syncDir()
}

// syncDir fsyncs the state directory so renames and unlinks are durable.
func (st *sessionStore) syncDir() error {
	d, err := os.Open(st.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ---- Idempotency journal ---------------------------------------------------

// appendIdem durably appends one completed-request record to the session's
// idempotency journal: JSON line, fsync'd before returning — and therefore
// before the recorded response reaches the client, so a retry arriving after
// a crash always finds the record the original response was based on.
func (st *sessionStore) appendIdem(id string, rec idemRecord) error {
	if err := st.checkFault(); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(st.idemPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return err
	}
	return f.Sync()
}

// appendIdemRetry is appendIdem with the retry-once-then-degrade policy.
func (st *sessionStore) appendIdemRetry(id string, rec idemRecord) {
	if st.appendIdem(id, rec) == nil {
		return
	}
	if err := st.appendIdem(id, rec); err != nil {
		st.mWriteFailures.Inc()
		st.logger.Warn("idempotency journal append failed", "session", id, "key", rec.Key, "error", err.Error())
	}
}

// loadIdem replays a session's idempotency journal. A torn final line (the
// crash landed mid-append; its fsync never completed, so no response was
// released against it) is skipped with a log line, never an error.
func (st *sessionStore) loadIdem(id string) []idemRecord {
	f, err := os.Open(st.idemPath(id))
	if err != nil {
		return nil
	}
	defer f.Close()
	var recs []idemRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec idemRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			st.logger.Warn("idempotency journal: skipping torn record", "session", id, "error", err.Error())
			continue
		}
		recs = append(recs, rec)
	}
	return recs
}

// rewriteIdem compacts a session's journal to exactly the given records
// (atomic tmp+rename like snapshots). Used on eviction so the journal never
// outgrows the bounded in-memory table it mirrors.
func (st *sessionStore) rewriteIdem(id string, recs []idemRecord) error {
	if err := st.checkFault(); err != nil {
		return err
	}
	if len(recs) == 0 {
		if err := os.Remove(st.idemPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		return st.syncDir()
	}
	tmp, err := os.CreateTemp(st.dir, id+".idem.tmp.*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), st.idemPath(id)); err != nil {
		return err
	}
	return st.syncDir()
}
