// Command fastsim runs one of the paper's benchmark workloads on a simulated
// accelerator configuration and prints the execution metrics: latency,
// per-component utilisation, evaluation-key traffic, energy and EDP.
//
// Usage:
//
//	fastsim -workload bootstrap|helr256|helr1024|resnet20 \
//	        -config fast|sharp|sharp-lm|sharp-8c|sharp-lm8c|fast-notbm|fast-36 \
//	        [-plan aether|hoisting|oneksw] [-json] \
//	        [-trace-out t.json] [-metrics-out m.json] [-http 127.0.0.1:9090]
//
// -trace-out writes the simulated timeline as Chrome trace-event JSON
// (loadable in chrome://tracing or https://ui.perfetto.dev), -metrics-out
// dumps the metrics registry as JSON, and -http serves /metrics (Prometheus
// text), /debug/vars (expvar) and /debug/pprof on the given address after the
// run, blocking until interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"

	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/baselines"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/sim"
	"github.com/fastfhe/fast/internal/trace"
	"github.com/fastfhe/fast/internal/workloads"
)

func pickWorkload(name string) (*trace.Trace, error) {
	p := workloads.DefaultProfile()
	switch name {
	case "bootstrap":
		return workloads.Bootstrap(p), nil
	case "helr256":
		return workloads.HELR(p, 256), nil
	case "helr1024":
		return workloads.HELR(p, 1024), nil
	case "resnet20":
		return workloads.ResNet20(p), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func pickConfig(name string) (arch.Config, error) {
	switch name {
	case "fast":
		return arch.FAST(), nil
	case "sharp":
		return baselines.SHARP(), nil
	case "sharp-lm":
		return baselines.SHARPLM(), nil
	case "sharp-8c":
		return baselines.SHARP8C(), nil
	case "sharp-lm8c":
		return baselines.SHARPLM8C(), nil
	case "fast-notbm":
		return baselines.FASTNoTBM(), nil
	case "fast-36":
		return baselines.FAST36(), nil
	default:
		return arch.Config{}, fmt.Errorf("unknown config %q", name)
	}
}

// Test hooks: httpStarted observes the bound address once serving begins, and
// httpWait blocks until the server should shut down (interrupt by default).
var (
	httpStarted = func(net.Addr) {}
	httpWait    = func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
)

// writeFile dumps one export produced by write to path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fastsim", flag.ContinueOnError)
	workload := fs.String("workload", "bootstrap", "workload: bootstrap, helr256, helr1024, resnet20")
	config := fs.String("config", "fast", "accelerator: fast, sharp, sharp-lm, sharp-8c, sharp-lm8c, fast-notbm, fast-36")
	planKind := fs.String("plan", "", "key-switch plan: aether (default from config flags), hoisting, oneksw")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	sweep := fs.String("sweep", "", "CSV sensitivity sweep: clusters or memory (Fig. 13)")
	traceOut := fs.String("trace-out", "", "write the simulated timeline as Chrome trace-event JSON to this file")
	metricsOut := fs.String("metrics-out", "", "write the metrics registry snapshot as JSON to this file")
	httpAddr := fs.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address after the run (blocks until interrupted)")
	faultPlan := fs.String("fault-plan", "", "fault-injection plan: a scenario name (transfer, spike, corrupt, pressure, all) or a spec like transfer=0.2,spike=0.1x8,corrupt=0.05,pressure=0.1")
	faultSeed := fs.Uint64("fault-seed", 0, "seed of the deterministic fault stream (results are reproducible per seed)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := pickWorkload(*workload)
	if err != nil {
		return err
	}
	cfg, err := pickConfig(*config)
	if err != nil {
		return err
	}
	params := costmodel.SetII()

	if *sweep != "" {
		return runSweep(*sweep, tr, cfg, params, stdout)
	}

	klss, hoist := cfg.EnableKLSS, cfg.EnableHoisting
	switch *planKind {
	case "oneksw":
		klss, hoist = false, false
	case "hoisting":
		klss, hoist = false, true
	case "aether":
		klss, hoist = true, true
	case "":
	default:
		return fmt.Errorf("unknown plan %q", *planKind)
	}
	plan, err := sim.Plan(params, cfg, tr, klss, hoist)
	if err != nil {
		return err
	}
	simulator, err := sim.New(params, cfg, plan)
	if err != nil {
		return err
	}
	if *faultPlan != "" {
		fp, err := fault.ParsePlan(*faultPlan)
		if err != nil {
			return err
		}
		fp.Seed = *faultSeed
		simulator.SetFaultPlan(fp)
	}
	var o *obs.Observer
	if *traceOut != "" || *metricsOut != "" || *httpAddr != "" {
		o = obs.NewTracing(0)
		simulator.SetObserver(o)
	}
	res, err := simulator.Run(tr)
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		printResult(stdout, tr, cfg, res)
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, o.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote Chrome trace (%d events) to %s\n", o.Tr().Len(), *traceOut)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, o.WriteSnapshot); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote metrics snapshot to %s\n", *metricsOut)
	}
	if *httpAddr != "" {
		addr, shutdown, err := o.Serve(*httpAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(stdout, "serving observability on http://%s (Ctrl-C to exit)\n", addr)
		httpStarted(addr)
		httpWait()
	}
	return nil
}

func printResult(w io.Writer, tr *trace.Trace, cfg arch.Config, res *sim.Result) {
	fmt.Fprintf(w, "workload %-10s on %-12s: %.3f ms (%.0f cycles)\n", tr.Name, cfg.Name, res.TimeMS, res.Cycles)
	fmt.Fprintf(w, "  key-switches: %d  evk traffic: %.1f MB  pool hits/misses: %d/%d (prefetched %d)\n",
		tr.KeySwitchCount(), float64(res.EvkBytes)/(1<<20), res.PoolHits, res.PoolMisses, res.Prefetched)
	fmt.Fprintf(w, "  utilization: NTTU %.1f%%  BConvU %.1f%%  KMU %.1f%%  HBM %.1f%%  (stall %.1f%%)\n",
		100*res.Utilization(arch.NTTU), 100*res.Utilization(arch.BConvU),
		100*res.Utilization(arch.KMU), 100*res.Utilization(arch.HBM), 100*res.StallCy/res.Cycles)
	fmt.Fprintf(w, "  method split: hybrid %.0f cycles, klss %.0f cycles\n",
		res.MethodCycles[costmodel.Hybrid], res.MethodCycles[costmodel.KLSS])
	fmt.Fprintf(w, "  power %.1f W  energy %.3f J  EDP %.4f mJ*s\n", res.AvgPowerW, res.EnergyJ, res.EDP*1e3)
	if res.FaultPlan != "" {
		fmt.Fprintf(w, "  faults (%s): retries %d  timeouts %d  refetches %d  degraded %d  wasted %.1f MB  backoff %.0f cy\n",
			res.FaultPlan, res.Retries, res.Timeouts, res.Refetches, res.DegradedDecisions,
			float64(res.WastedEvkBytes)/(1<<20), res.BackoffCy)
	}
	for _, ph := range tr.Phases() {
		fmt.Fprintf(w, "    phase %-12s %8.0f cycles (%.1f%%)\n", ph, res.PhaseCycles[ph], 100*res.PhaseCycles[ph]/res.Cycles)
	}
}

// runSweep prints a CSV sensitivity study over cluster counts or SRAM sizes.
func runSweep(kind string, tr *trace.Trace, base arch.Config, params costmodel.Params, stdout io.Writer) error {
	var configs []arch.Config
	switch kind {
	case "clusters":
		for _, n := range []int{1, 2, 4, 8, 16} {
			c := base
			if n != base.Clusters {
				c = base.WithClusters(n)
			}
			configs = append(configs, c)
		}
	case "memory":
		for _, mb := range []float64{70, 140, 210, 281, 422, 562} {
			configs = append(configs, base.WithOnChipMB(mb))
		}
	default:
		return fmt.Errorf("unknown sweep %q (want clusters or memory)", kind)
	}
	fmt.Fprintln(stdout, "name,clusters,onchip_mb,time_ms,area_mm2,power_w,energy_j,evk_mb,ntt_util,hbm_util")
	for _, c := range configs {
		plan, err := sim.Plan(params, c, tr, c.EnableKLSS, c.EnableHoisting)
		if err != nil {
			return err
		}
		s, err := sim.New(params, c, plan)
		if err != nil {
			return err
		}
		res, err := s.Run(tr)
		if err != nil {
			return err
		}
		ap := c.TotalAreaPower()
		fmt.Fprintf(stdout, "%s,%d,%.0f,%.4f,%.1f,%.1f,%.4f,%.1f,%.3f,%.3f\n",
			c.Name, c.Clusters, c.OnChipMB, res.TimeMS, ap.AreaMM2, res.AvgPowerW,
			res.EnergyJ, float64(res.EvkBytes)/(1<<20),
			res.Utilization(arch.NTTU), res.Utilization(arch.HBM))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fastsim:", err)
		os.Exit(1)
	}
}
