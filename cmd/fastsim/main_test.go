package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -trace-out on the bootstrap workload must produce a valid Chrome
// trace-event JSON file: a traceEvents array whose complete events carry the
// required fields on the simulator's pid, plus metadata naming the tracks.
func TestTraceOutWritesValidChromeTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.json")
	var out bytes.Buffer
	if err := run([]string{"-workload", "bootstrap", "-trace-out", path}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	var spans, meta int
	for i, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Name == "" || ev.TS < 0 || ev.Dur <= 0 {
				t.Fatalf("event %d malformed: %+v", i, ev)
			}
		case "M":
			meta++
		case "i":
		default:
			t.Fatalf("event %d has unknown phase %q", i, ev.Ph)
		}
	}
	if spans == 0 {
		t.Fatal("trace has no complete spans")
	}
	if meta == 0 {
		t.Fatal("trace has no metadata (process/thread names)")
	}
	if !strings.Contains(out.String(), "wrote Chrome trace") {
		t.Errorf("run output missing trace confirmation:\n%s", out.String())
	}
}

// -metrics-out must dump a registry snapshot with the simulator gauges.
func TestMetricsOutWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	var out bytes.Buffer
	if err := run([]string{"-workload", "resnet20", "-metrics-out", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters    map[string]uint64  `json:"counters"`
		FloatGauges map[string]float64 `json:"float_gauges"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.FloatGauges["sim.cycles"] <= 0 {
		t.Errorf("sim.cycles gauge = %g, want > 0", snap.FloatGauges["sim.cycles"])
	}
	if len(snap.Counters) == 0 {
		t.Error("snapshot has no counters")
	}
}

// -http must serve Prometheus text on /metrics and expvar JSON on
// /debug/vars; the smoke test scrapes both in-process via the test hooks.
func TestHTTPServesMetricsAndVars(t *testing.T) {
	oldStarted, oldWait := httpStarted, httpWait
	defer func() { httpStarted, httpWait = oldStarted, oldWait }()

	var addr net.Addr
	httpStarted = func(a net.Addr) { addr = a }
	httpWait = func() {
		if addr == nil {
			t.Fatal("httpStarted not called before httpWait")
		}
		base := "http://" + addr.String()

		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: status %d", resp.StatusCode)
		}
		if !strings.Contains(string(body), "# TYPE sim_cycles gauge") {
			t.Errorf("/metrics missing sim_cycles gauge:\n%.400s", body)
		}
		if !strings.Contains(string(body), "hemera_pool_") {
			t.Errorf("/metrics missing hemera pool counters:\n%.400s", body)
		}

		resp, err = http.Get(base + "/debug/vars")
		if err != nil {
			t.Fatalf("GET /debug/vars: %v", err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/vars: status %d", resp.StatusCode)
		}
		var vars map[string]json.RawMessage
		if err := json.Unmarshal(body, &vars); err != nil {
			t.Fatalf("/debug/vars is not valid JSON: %v\n%.400s", err, body)
		}
		for _, key := range []string{"memstats", "fast"} {
			if _, ok := vars[key]; !ok {
				t.Errorf("/debug/vars missing %q key", key)
			}
		}

		resp, err = http.Get(base + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatalf("GET /debug/pprof/cmdline: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /debug/pprof/cmdline: status %d", resp.StatusCode)
		}
	}

	var out bytes.Buffer
	if err := run([]string{"-workload", "bootstrap", "-http", "127.0.0.1:0"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// The plain CLI paths must keep working.
func TestRunPlainAndSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "bootstrap", "-config", "sharp"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "workload") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-sweep", "clusters", "-workload", "resnet20"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "name,clusters,") {
		t.Errorf("sweep CSV header missing:\n%.200s", out.String())
	}
	if err := run([]string{"-workload", "nope"}, io.Discard); err == nil {
		t.Error("expected error for unknown workload")
	}
}

// -fault-plan/-fault-seed must run the fault-injection path in process: the
// human output reports the recovery accounting, the JSON output is
// bit-identical across two runs with the same seed, and a malformed plan
// spec fails cleanly.
func TestRunFaultPlanFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "bootstrap", "-fault-plan", "all", "-fault-seed", "7"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "faults (") {
		t.Errorf("fault accounting missing from output:\n%s", out.String())
	}

	jsonRun := func() string {
		var b bytes.Buffer
		if err := run([]string{"-workload", "bootstrap", "-fault-plan",
			"transfer=0.3,spike=0.2x8,corrupt=0.1,pressure=0.1", "-fault-seed", "11", "-json"}, &b); err != nil {
			t.Fatalf("json run: %v", err)
		}
		return b.String()
	}
	a, b := jsonRun(), jsonRun()
	if a != b {
		t.Error("two runs with the same fault seed produced different JSON results")
	}
	var res struct {
		FaultPlan                    string
		Retries, Timeouts, Refetches int
		WastedEvkBytes               int64
	}
	if err := json.Unmarshal([]byte(a), &res); err != nil {
		t.Fatalf("decoding result JSON: %v", err)
	}
	if res.FaultPlan == "" {
		t.Error("result JSON must carry the fault plan")
	}
	if res.Retries+res.Timeouts+res.Refetches == 0 || res.WastedEvkBytes == 0 {
		t.Errorf("expected recovery activity, got %+v", res)
	}

	if err := run([]string{"-fault-plan", "warp=0.1"}, io.Discard); err == nil {
		t.Error("expected error for malformed fault plan")
	}
}
