// Command aether is the offline key-switching planner (paper §4.1.1): it
// analyses a workload's FHE operation flow against a target accelerator,
// prints the Methods Candidate Table summary, and writes the Aether
// configuration file that the Hemera runtime (and the simulator) consume.
//
// Usage:
//
//	aether -workload bootstrap|helr256|helr1024|resnet20 [-config fast] [-o aether.json] [-mct]
//	       [-http 127.0.0.1:9091]
//
// -http serves the planner's decision tallies as Prometheus text on /metrics
// plus expvar (/debug/vars) and pprof (/debug/pprof) after the analysis,
// blocking until interrupted.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"

	"github.com/fastfhe/fast/internal/aether"
	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/baselines"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/trace"
	"github.com/fastfhe/fast/internal/workloads"
)

// Test hooks mirroring cmd/fastsim: httpStarted observes the bound address,
// httpWait blocks until shutdown (interrupt by default).
var (
	httpStarted = func(net.Addr) {}
	httpWait    = func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
)

func pickWorkload(name string) (*trace.Trace, error) {
	p := workloads.DefaultProfile()
	switch name {
	case "bootstrap":
		return workloads.Bootstrap(p), nil
	case "helr256":
		return workloads.HELR(p, 256), nil
	case "helr1024":
		return workloads.HELR(p, 1024), nil
	case "resnet20":
		return workloads.ResNet20(p), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func pickConfig(name string) (arch.Config, error) {
	switch name {
	case "fast":
		return arch.FAST(), nil
	case "sharp":
		return baselines.SHARP(), nil
	case "sharp-lm":
		return baselines.SHARPLM(), nil
	}
	return arch.Config{}, fmt.Errorf("unknown config %q", name)
}

func run() error {
	workload := flag.String("workload", "bootstrap", "workload to analyse")
	config := flag.String("config", "fast", "target accelerator: fast, sharp, sharp-lm")
	out := flag.String("o", "", "write the Aether configuration file here (default stdout)")
	showMCT := flag.Bool("mct", false, "print the Methods Candidate Table")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address after the analysis (blocks until interrupted)")
	flag.Parse()

	tr, err := pickWorkload(*workload)
	if err != nil {
		return err
	}
	cfg, err := pickConfig(*config)
	if err != nil {
		return err
	}
	an, err := aether.NewAnalyzer(costmodel.SetII(), cfg)
	if err != nil {
		return err
	}
	plan, mct, err := an.Analyze(tr)
	if err != nil {
		return err
	}

	if *showMCT {
		fmt.Fprintln(os.Stderr, "op  ct  level hoist times  cost_hy(M)  cost_kl(M)  key_hy(MB)  key_kl(MB)")
		for _, e := range mct {
			fmt.Fprintf(os.Stderr, "%3d %3d %5d %5d %5d  %10.1f  %10.1f  %10.1f  %10.1f\n",
				e.OpIndex, e.CtID, e.Level, e.Hoist, e.Times,
				e.Cost[0]/1e6, e.Cost[1]/1e6,
				float64(e.KeySize[0])/(1<<20), float64(e.KeySize[1])/(1<<20))
		}
	}

	var hybrid, klss, hoisted int
	for _, d := range plan.Decisions {
		if d.Method == costmodel.KLSS {
			klss++
		} else {
			hybrid++
		}
		if d.Hoist > 1 {
			hoisted++
		}
	}
	fmt.Fprintf(os.Stderr, "aether: %s on %s: %d key-switch ops (%d hybrid, %d klss, %d hoisted)\n",
		tr.Name, cfg.Name, len(plan.Decisions), hybrid, klss, hoisted)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := plan.Save(w); err != nil {
		return err
	}

	if *httpAddr != "" {
		o := obs.New()
		reg := o.Reg()
		reg.Counter("aether.decision.hybrid").Add(uint64(hybrid))
		reg.Counter("aether.decision.klss").Add(uint64(klss))
		reg.Counter("aether.decision.hoisted").Add(uint64(hoisted))
		addr, shutdown, err := o.Serve(*httpAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "aether: serving observability on http://%s (Ctrl-C to exit)\n", addr)
		httpStarted(addr)
		httpWait()
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aether:", err)
		os.Exit(1)
	}
}
