package fast

import "context"

// This file defines the functional-options surface of the package:
//
//   - Option configures NewContext (context-wide settings such as the
//     limb-parallelism budget or the default key-switching method).
//   - OpOption configures a single operation call (per-call method selection,
//     rescale suppression), making method choice stateless so one Context can
//     serve many goroutines with different methods concurrently.

// Option configures a Context at construction time. Options are applied on
// top of the ContextConfig passed to NewContext, last writer wins.
type Option func(*contextSettings)

// contextSettings collects option-driven knobs that sit outside the
// parameter-set description in ContextConfig.
type contextSettings struct {
	cfg           *ContextConfig
	defaultMethod Method
	observer      *Observer
	faultPlan     *FaultPlan
	evk           *evkBinding // shared evk tier subscription (WithEvkCache)
}

// WithParallelism caps the number of worker goroutines each homomorphic
// operation fans its limb-level kernels (NTT, BConv/ModUp, KeyMult, ModDown,
// Rescale) out to:
//
//	n == 1  (the default) keeps each operation on its calling goroutine —
//	        the right setting when many goroutines evaluate concurrently,
//	        because the goroutines themselves provide the parallelism;
//	n >= 2  uses up to n workers per operation — the right setting to cut
//	        the latency of a single stream of operations;
//	n <= 0  uses GOMAXPROCS workers.
//
// This is the software analogue of the FAST accelerator's scalable lane
// parallelism: RNS limbs are independent, so the same kernels run serially,
// per-operation-parallel, or request-parallel without changing results.
func WithParallelism(n int) Option {
	return func(s *contextSettings) { s.cfg.Parallelism = n }
}

// WithDefaultMethod sets the key-switching backend used by operations that do
// not pass an explicit WithMethod option. The default default is Hybrid.
func WithDefaultMethod(m Method) Option {
	return func(s *contextSettings) { s.defaultMethod = m }
}

// WithObserver attaches an observability substrate to the context: every
// homomorphic operation updates per-op counters and latency histograms
// (split by key-switching backend), the key switchers record their
// ModUp/KeyMult/ModDown phase timings, the scratch pools report hit/miss
// traffic, and — when the observer was built with NewTracingObserver — each
// operation emits a wall-clock span into the Chrome trace. A nil observer
// (the default) disables everything at a single-pointer-check cost per
// operation. Read results with Context.Metrics or the Observer's
// Write*/Handler surface.
func WithObserver(ob *Observer) Option {
	return func(s *contextSettings) { s.observer = ob }
}

// WithFaultPlan attaches a deterministic fault-injection plan to the
// context's modeled evaluation-key transfer path. Every key-switching
// operation (Mul, Rotate, RotateHoisted, Conjugate) then drives one modeled
// Hemera key transfer through the plan's seeded fault stream, exercising
// retries, timeouts, corruption refetches, pool-pressure flushes and the
// degradation fallback. Faults never change computed values — decryptions
// stay bit-exact with a fault-free context — they only fill in
// Context.FaultStats and (with WithObserver) the fault.*, hemera.* and
// aether.degraded_decisions instruments. An all-zero plan is ignored.
func WithFaultPlan(p FaultPlan) Option {
	return func(s *contextSettings) { s.faultPlan = &p }
}

// WithRotations replaces the set of rotation amounts Galois keys are
// generated for.
func WithRotations(rotations ...int) Option {
	return func(s *contextSettings) { s.cfg.Rotations = rotations }
}

// WithConjugation toggles generation of the conjugation key.
func WithConjugation(enabled bool) Option {
	return func(s *contextSettings) { s.cfg.Conjugation = enabled }
}

// WithKLSS toggles generation of the 60-bit-chain keys for the KLSS backend.
func WithKLSS(enabled bool) Option {
	return func(s *contextSettings) { s.cfg.EnableKLSS = enabled }
}

// WithSeed fixes the randomness seed.
func WithSeed(seed int64) Option {
	return func(s *contextSettings) { s.cfg.Seed = seed }
}

// OpOption configures a single homomorphic operation call. Accepted by
// Context.Mul, MulPlain, MulConst, Rotate, RotateHoisted and Conjugate.
type OpOption func(*opSettings)

// opSettings is the resolved per-call configuration.
type opSettings struct {
	method    Method
	noRescale bool
	ctx       context.Context // nil = not cancellable
	requestID string          // folded into ctx by Context.settings
}

// WithMethod routes this one operation through the given key-switching
// backend, overriding the context default. WithMethod mutates no shared
// state: two goroutines can evaluate with different methods on the same
// Context at the same time, which is exactly what the Aether planner's
// per-operation method assignment (paper §4.1) needs.
func WithMethod(m Method) OpOption {
	return func(s *opSettings) { s.method = m }
}

// NoRescale suppresses the automatic rescale after Mul, MulPlain and
// MulConst: the result keeps its level and carries the product scale. Use
// Context.Rescale to drop the level later — e.g. after summing several
// products at the same scale, paying one rescale instead of many.
func NoRescale() OpOption {
	return func(s *opSettings) { s.noRescale = true }
}

// WithContext makes this one operation cancellable: the kernels underneath
// poll ctx at cheap checkpoints (per limb chunk in the key-switch
// ModUp/KeyMult/ModDown passes, per level in linear transforms and
// bootstrapping) and abandon the operation with a typed error as soon as the
// context is done. The returned error matches both fast.ErrCanceled /
// fast.ErrDeadline and the underlying context.Canceled /
// context.DeadlineExceeded under errors.Is. Abandoned operations release all
// pooled scratch and leave their inputs untouched.
//
// A nil or never-cancelled context (context.Background()) adds no overhead
// beyond a single pointer check per checkpoint. The *Ctx convenience methods
// (MulCtx, RotateCtx, ...) are shorthand for passing this option.
func WithContext(ctx context.Context) OpOption {
	return func(s *opSettings) { s.ctx = ctx }
}

// WithRequestID tags this one operation with a serving-request identifier:
// when the context traces (NewTracingObserver), the operation's span and the
// key-switch phase spans underneath it carry a request_id argument, so a
// Chrome trace can be filtered down to exactly the spans one request caused.
// It composes with WithContext in either order; an ID already carried by the
// WithContext context (see ContextWithRequestID) makes this option
// redundant. The empty string is a no-op.
func WithRequestID(id string) OpOption {
	return func(s *opSettings) { s.requestID = id }
}
