package fast

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestBootstrapContext(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping is slow")
	}
	ctx, err := NewBootstrapContext(BootstrapContextConfig{})
	if err != nil {
		t.Fatalf("NewBootstrapContext: %v", err)
	}
	values := make([]complex128, ctx.Slots())
	for i := range values {
		values[i] = complex(0.4*math.Sin(float64(i)), 0.2)
	}
	ct, err := ctx.Encrypt(values)
	if err != nil {
		t.Fatal(err)
	}
	exhausted := ctx.ExhaustLevels(ct)
	if exhausted.Level() != 0 {
		t.Fatalf("ExhaustLevels left level %d", exhausted.Level())
	}
	refreshed, err := ctx.Bootstrap(exhausted)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if refreshed.Level() < 1 {
		t.Fatalf("no levels restored: %d", refreshed.Level())
	}
	got := ctx.Decrypt(refreshed)
	for i := range values {
		if e := cmplx.Abs(got[i] - values[i]); e > 5e-3 {
			t.Fatalf("slot %d error %g", i, e)
		}
	}
}

func TestBootstrapContextValidation(t *testing.T) {
	if _, err := NewBootstrapContext(BootstrapContextConfig{Levels: 5}); err == nil {
		t.Error("expected error for too-shallow chain")
	}
}
