package fast_test

import (
	"math"
	"math/rand"
	"testing"

	fast "github.com/fastfhe/fast"
)

// The chaos suite drives long pseudo-random operation sequences through a
// fault-injected Context and asserts the central resilience invariant:
// faults on the modeled key-transfer path change timing, traffic and
// recovery accounting — never computed values. Every decryption must be
// bit-exact with the fault-free run of the same script.
//
// Run it under the race detector with `make chaos` (folded into `make
// check`).

const chaosSeed = 0xFA57

func chaosOps(t testing.TB) int {
	if testing.Short() {
		return 200
	}
	return 1200
}

func chaosConfig() fast.ContextConfig {
	return fast.ContextConfig{
		LogN:        9,
		Levels:      3,
		LogScale:    36,
		Rotations:   []int{1, -1, 4},
		Conjugation: true,
		EnableKLSS:  true,
		Seed:        7,
	}
}

// runChaosScript executes a deterministic pseudo-random script of nOps
// operations on ctx and returns the decryption of every working-set
// ciphertext. The script depends only on (seed, nOps) — two contexts built
// from the same config execute identical call sequences, so their sampler
// draws (and therefore their ciphertexts) coincide exactly.
func runChaosScript(t *testing.T, ctx *fast.Context, nOps int, seed int64) [][]complex128 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	slots := ctx.Slots()
	rots := []int{1, -1, 4}

	fresh := func() *fast.Ciphertext {
		vals := make([]complex128, slots)
		for i := range vals {
			vals[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		ct, err := ctx.Encrypt(vals)
		if err != nil {
			t.Fatalf("encrypt: %v", err)
		}
		return ct
	}

	const setSize = 4
	cts := make([]*fast.Ciphertext, setSize)
	for i := range cts {
		cts[i] = fresh()
	}
	method := func() fast.OpOption {
		if rng.Intn(2) == 0 && ctx.SupportsKLSS() {
			return fast.WithMethod(fast.KLSS)
		}
		return fast.WithMethod(fast.Hybrid)
	}

	for op := 0; op < nOps; op++ {
		i, j := rng.Intn(setSize), rng.Intn(setSize)
		var out *fast.Ciphertext
		var err error
		switch k := rng.Intn(10); {
		case k < 2: // Add
			out, err = ctx.Add(cts[i], cts[j])
		case k < 3: // Sub
			out, err = ctx.Sub(cts[i], cts[j])
		case k < 6: // Rotate (key-switch)
			out, err = ctx.Rotate(cts[i], rots[rng.Intn(len(rots))], method())
		case k < 7: // Conjugate (key-switch)
			out, err = ctx.Conjugate(cts[i], method())
		case k < 8: // hoisted rotations (key-switch per rotation)
			var outs map[int]*fast.Ciphertext
			outs, err = ctx.RotateHoisted(cts[i], rots, method())
			if err == nil {
				out = outs[rots[rng.Intn(len(rots))]]
			}
		case k < 9: // AddConst
			out, err = ctx.AddConst(cts[i], rng.Float64())
		default: // Mul (key-switch, consumes a level) or refresh at the bottom
			if min(cts[i].Level(), cts[j].Level()) > 0 {
				out, err = ctx.Mul(cts[i], cts[j], method())
			} else {
				out = fresh()
			}
		}
		if err != nil {
			t.Fatalf("op %d failed: %v", op, err)
		}
		cts[rng.Intn(setSize)] = out
	}

	dec := make([][]complex128, setSize)
	for i, ct := range cts {
		dec[i] = ctx.Decrypt(ct)
	}
	return dec
}

// bitsEqual compares two decrypted vectors bit-for-bit (no tolerance: the
// invariant is exactness, not approximation).
func bitsEqual(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

func TestChaosFaultScenariosBitExact(t *testing.T) {
	nOps := chaosOps(t)
	base, err := fast.NewContext(chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := runChaosScript(t, base, nOps, chaosSeed)
	if base.FaultPlanActive() || base.FaultStats() != (fast.FaultStats{}) {
		t.Fatal("fault-free context must carry no fault state")
	}

	for _, name := range []string{"transfer", "spike", "corrupt", "pressure", "all"} {
		t.Run(name, func(t *testing.T) {
			plan, err := fast.FaultScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			plan.Seed = 99
			ctx, err := fast.NewContext(chaosConfig(), fast.WithFaultPlan(plan))
			if err != nil {
				t.Fatal(err)
			}
			got := runChaosScript(t, ctx, nOps, chaosSeed)
			for i := range want {
				if !bitsEqual(want[i], got[i]) {
					t.Fatalf("scenario %s: decryption %d diverged from the fault-free run", name, i)
				}
			}
			st := ctx.FaultStats()
			if st.Transfers == 0 {
				t.Fatal("no key transfers were modeled")
			}
			switch name {
			case "transfer":
				if st.Retries == 0 {
					t.Error("transfer scenario produced no retries")
				}
			case "spike":
				if st.Timeouts == 0 {
					t.Error("spike scenario produced no timeouts")
				}
			case "corrupt":
				if st.Refetches == 0 {
					t.Error("corrupt scenario produced no refetches")
				}
			case "pressure":
				if st.DegradedDecisions == 0 {
					t.Error("pressure scenario degraded no decisions")
				}
			}
			if name != "pressure" && st.WastedBytes == 0 {
				t.Errorf("scenario %s wasted no modeled traffic", name)
			}
		})
	}
}

// The fault stream is deterministic: the same plan+seed over the same script
// reproduces the exact recovery accounting.
func TestChaosFaultStreamDeterministic(t *testing.T) {
	nOps := chaosOps(t)
	plan, err := fast.FaultScenario("all")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 1234
	var stats [2]fast.FaultStats
	var dec [2][][]complex128
	for r := 0; r < 2; r++ {
		ctx, err := fast.NewContext(chaosConfig(), fast.WithFaultPlan(plan))
		if err != nil {
			t.Fatal(err)
		}
		dec[r] = runChaosScript(t, ctx, nOps, chaosSeed)
		stats[r] = ctx.FaultStats()
	}
	if stats[0] != stats[1] {
		t.Fatalf("same seed, different fault accounting:\n%+v\nvs\n%+v", stats[0], stats[1])
	}
	if stats[0].Retries+stats[0].Timeouts+stats[0].Refetches == 0 {
		t.Fatal("the all scenario injected nothing")
	}
	for i := range dec[0] {
		if !bitsEqual(dec[0][i], dec[1][i]) {
			t.Fatalf("decryption %d differs between identical runs", i)
		}
	}
	// A different fault seed must not change values either.
	plan.Seed = 4321
	ctx, err := fast.NewContext(chaosConfig(), fast.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	other := runChaosScript(t, ctx, nOps, chaosSeed)
	for i := range dec[0] {
		if !bitsEqual(dec[0][i], other[i]) {
			t.Fatalf("fault seed changed decrypted values at ciphertext %d", i)
		}
	}
}

// Metrics surface through an attached observer: the modeled manager and
// injector publish the fault.*, hemera.* and aether.* instruments.
func TestChaosFaultMetricsSurface(t *testing.T) {
	plan, err := fast.FaultScenario("all")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 5
	ob := fast.NewObserver()
	ctx, err := fast.NewContext(chaosConfig(), fast.WithFaultPlan(plan), fast.WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	runChaosScript(t, ctx, 300, chaosSeed)
	snap := ob.Metrics()
	for _, name := range []string{"fault.injected", "hemera.retries", "hemera.wasted_bytes"} {
		if snap.Counters[name] == 0 {
			t.Errorf("metric %s did not accumulate", name)
		}
	}
	st := ctx.FaultStats()
	if got := snap.Counters["hemera.retries"]; got != uint64(st.Retries) {
		t.Errorf("hemera.retries = %d, FaultStats.Retries = %d", got, st.Retries)
	}
}
