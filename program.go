package fast

import (
	"encoding/json"
	"fmt"
)

// ProgramVersion is the JSON program format version this package speaks.
// Version 2 is the first public format: it adds the explicit `version` field,
// a declared input list and planner-decided ("auto") method selection.
// cmd/fastd keeps accepting the legacy v1 straight-line shape through an
// adapter that lowers it onto a Program.
const ProgramVersion = 2

// ProgramOp is one instruction of a Program. Fields are op-dependent,
// mirroring the wire format:
//
//	op           reads              extras
//	add,sub,mul  A, B
//	mulplain     A                  Values
//	addplain     A                  Values
//	mulconst     A                  Value
//	addconst     A                  Value
//	rotate       A                  R
//	conjugate    A
//	rescale      A
//
// Every op writes Out. Method/MethodPinned carry the key-switching backend
// for mul/rotate/conjugate: unpinned ops are decided by the planner (or by
// the Plan-time default, see PlanWithDefaultMethod). NoRescale suppresses the
// automatic rescale of the multiplying ops.
type ProgramOp struct {
	Op           string
	Out          string
	A, B         string
	R            int
	Value        float64
	Values       []complex128
	Method       Method
	MethodPinned bool
	NoRescale    bool
}

// Program is an SSA-style register program over ciphertexts: declared inputs
// seed the registers, each op reads registers (and literals) and writes a
// fresh register, and one named register is returned. Build one with
// NewProgram's chaining methods or unmarshal the JSON format v2; compile it
// against a Context with Context.Plan.
//
// A Program is immutable once built and safe to share: many Plans (and many
// concurrent executions) can reference the same Program.
type Program struct {
	inputs []string
	ops    []ProgramOp
	output string
	err    error // first builder error, sticky
}

// NewProgram returns an empty program builder. Calls chain:
//
//	p := fast.NewProgram().In("x", "y").
//		Mul("t", "x", "y").
//		Rotate("r", "t", 1, fast.WithMethod(fast.KLSS)).
//		AddConst("out", "r", 0.125).
//		Return("out")
func NewProgram() *Program { return &Program{} }

// In declares input registers (ciphertexts supplied at execution time).
func (p *Program) In(names ...string) *Program {
	p.inputs = append(p.inputs, names...)
	return p
}

// progOpSettings resolves per-op builder options. Unlike Context.settings it
// must distinguish "no WithMethod passed" (planner decides) from an explicit
// pin, so the method field starts at a sentinel.
func progOpSettings(opts []OpOption) (m Method, pinned, noRescale bool) {
	s := opSettings{method: Method(-1)}
	for _, o := range opts {
		o(&s)
	}
	if s.method >= 0 {
		return s.method, true, s.noRescale
	}
	return Hybrid, false, s.noRescale
}

func (p *Program) op(op ProgramOp) *Program {
	p.ops = append(p.ops, op)
	return p
}

// Add appends out = a + b.
func (p *Program) Add(out, a, b string) *Program {
	return p.op(ProgramOp{Op: "add", Out: out, A: a, B: b})
}

// Sub appends out = a - b.
func (p *Program) Sub(out, a, b string) *Program {
	return p.op(ProgramOp{Op: "sub", Out: out, A: a, B: b})
}

// Mul appends out = a * b (relinearised, auto-rescaled unless NoRescale).
// WithMethod pins the key-switching backend; without it the planner decides.
func (p *Program) Mul(out, a, b string, opts ...OpOption) *Program {
	m, pinned, nr := progOpSettings(opts)
	return p.op(ProgramOp{Op: "mul", Out: out, A: a, B: b, Method: m, MethodPinned: pinned, NoRescale: nr})
}

// MulPlain appends out = a * values (plaintext vector).
func (p *Program) MulPlain(out, a string, values []complex128, opts ...OpOption) *Program {
	_, _, nr := progOpSettings(opts)
	return p.op(ProgramOp{Op: "mulplain", Out: out, A: a, Values: values, NoRescale: nr})
}

// AddPlain appends out = a + values (plaintext vector).
func (p *Program) AddPlain(out, a string, values []complex128) *Program {
	return p.op(ProgramOp{Op: "addplain", Out: out, A: a, Values: values})
}

// MulConst appends out = a * v.
func (p *Program) MulConst(out, a string, v float64, opts ...OpOption) *Program {
	_, _, nr := progOpSettings(opts)
	return p.op(ProgramOp{Op: "mulconst", Out: out, A: a, Value: v, NoRescale: nr})
}

// AddConst appends out = a + v.
func (p *Program) AddConst(out, a string, v float64) *Program {
	return p.op(ProgramOp{Op: "addconst", Out: out, A: a, Value: v})
}

// Rotate appends out = rotate(a, r). WithMethod pins the backend; without it
// the planner decides — and rotations of a shared source are grouped into one
// hoisted decomposition automatically.
func (p *Program) Rotate(out, a string, r int, opts ...OpOption) *Program {
	m, pinned, _ := progOpSettings(opts)
	return p.op(ProgramOp{Op: "rotate", Out: out, A: a, R: r, Method: m, MethodPinned: pinned})
}

// Conjugate appends out = conj(a).
func (p *Program) Conjugate(out, a string, opts ...OpOption) *Program {
	m, pinned, _ := progOpSettings(opts)
	return p.op(ProgramOp{Op: "conjugate", Out: out, A: a, Method: m, MethodPinned: pinned})
}

// Rescale appends out = rescale(a) (drops one level).
func (p *Program) Rescale(out, a string) *Program {
	return p.op(ProgramOp{Op: "rescale", Out: out, A: a})
}

// Append appends a raw instruction — the programmatic escape hatch for
// adapters lowering foreign program shapes onto a Program. No checking
// happens here; Validate reports malformed ops with their index, exactly as
// it does for unmarshalled programs.
func (p *Program) Append(op ProgramOp) *Program { return p.op(op) }

// Return names the output register.
func (p *Program) Return(out string) *Program {
	p.output = out
	return p
}

// Inputs returns the declared input registers.
func (p *Program) Inputs() []string { return append([]string(nil), p.inputs...) }

// Ops returns the instruction list.
func (p *Program) Ops() []ProgramOp { return append([]ProgramOp(nil), p.ops...) }

// Output returns the output register name.
func (p *Program) Output() string { return p.output }

// Validate statically checks the program. Every failure wraps
// ErrInvalidProgram with a distinct message; the checks, in order per op:
// missing out register, unknown op, arity (missing B operand / values), reads
// of undefined registers, unknown pinned method, writes shadowing a program
// input, duplicate register writes. Whole-program checks: non-empty op list,
// a named output that is written (or is an input), and no unused inputs.
func (p *Program) Validate() error {
	if p.err != nil {
		return p.err
	}
	if len(p.ops) == 0 {
		return fmt.Errorf("empty program: %w", ErrInvalidProgram)
	}
	if p.output == "" {
		return fmt.Errorf("missing output register: %w", ErrInvalidProgram)
	}
	inputs := make(map[string]bool, len(p.inputs))
	for _, in := range p.inputs {
		if in == "" {
			return fmt.Errorf("empty input register name: %w", ErrInvalidProgram)
		}
		if inputs[in] {
			return fmt.Errorf("input register %q declared twice: %w", in, ErrInvalidProgram)
		}
		inputs[in] = true
	}
	defined := make(map[string]bool, len(inputs)+len(p.ops))
	for in := range inputs {
		defined[in] = true
	}
	used := make(map[string]bool)
	written := make(map[string]bool, len(p.ops))
	for i, op := range p.ops {
		if op.Out == "" {
			return fmt.Errorf("op %d (%s): missing out register: %w", i, op.Op, ErrInvalidProgram)
		}
		needB := false
		switch op.Op {
		case "add", "sub", "mul":
			needB = true
		case "mulplain", "addplain":
			if len(op.Values) == 0 {
				return fmt.Errorf("op %d (%s): missing values: %w", i, op.Op, ErrInvalidProgram)
			}
		case "mulconst", "addconst", "rotate", "conjugate", "rescale":
		default:
			return fmt.Errorf("op %d: unknown op %q: %w", i, op.Op, ErrInvalidProgram)
		}
		if op.A == "" || !defined[op.A] {
			return fmt.Errorf("op %d (%s): undefined register %q: %w", i, op.Op, op.A, ErrInvalidProgram)
		}
		used[op.A] = true
		if needB {
			if op.B == "" || !defined[op.B] {
				return fmt.Errorf("op %d (%s): undefined register %q: %w", i, op.Op, op.B, ErrInvalidProgram)
			}
			used[op.B] = true
		}
		if op.MethodPinned && op.Method != Hybrid && op.Method != KLSS {
			return fmt.Errorf("op %d (%s): unknown method %d: %w", i, op.Op, int(op.Method), ErrInvalidProgram)
		}
		if inputs[op.Out] {
			return fmt.Errorf("op %d (%s): register %q shadows a program input: %w", i, op.Op, op.Out, ErrInvalidProgram)
		}
		if written[op.Out] {
			return fmt.Errorf("op %d (%s): register %q already written (duplicate write): %w", i, op.Op, op.Out, ErrInvalidProgram)
		}
		written[op.Out] = true
		defined[op.Out] = true
	}
	if !defined[p.output] {
		return fmt.Errorf("output register %q never written: %w", p.output, ErrInvalidProgram)
	}
	used[p.output] = true
	for _, in := range p.inputs {
		if !used[in] {
			return fmt.Errorf("input register %q is never used: %w", in, ErrInvalidProgram)
		}
	}
	return nil
}

// ---- JSON format v2 --------------------------------------------------------

// wireComplex is the {re, im} JSON shape of one complex literal.
type wireComplex struct {
	Re float64 `json:"re"`
	Im float64 `json:"im"`
}

// programOpWire is one instruction on the wire. method is "" (planner
// decides), "hybrid" or "klss".
type programOpWire struct {
	Op        string        `json:"op"`
	Out       string        `json:"out"`
	A         string        `json:"a,omitempty"`
	B         string        `json:"b,omitempty"`
	R         int           `json:"r,omitempty"`
	Value     float64       `json:"value,omitempty"`
	Values    []wireComplex `json:"values,omitempty"`
	Method    string        `json:"method,omitempty"`
	NoRescale bool          `json:"no_rescale,omitempty"`
}

// programWire is the JSON program format v2.
type programWire struct {
	Version int             `json:"version"`
	Inputs  []string        `json:"inputs,omitempty"`
	Ops     []programOpWire `json:"ops"`
	Output  string          `json:"output"`
}

// methodName renders a ProgramOp's method for the wire ("" when unpinned).
func (op ProgramOp) methodName() string {
	if !op.MethodPinned {
		return ""
	}
	return op.Method.String()
}

// ParseMethod maps a wire method name onto (Method, pinned): "" leaves the
// choice to the planner, "hybrid" and "klss" pin it. Any other name is an
// ErrInvalidProgram.
func ParseMethod(name string) (Method, bool, error) {
	switch name {
	case "":
		return Hybrid, false, nil
	case "hybrid":
		return Hybrid, true, nil
	case "klss":
		return KLSS, true, nil
	default:
		return 0, false, fmt.Errorf("unknown method %q: %w", name, ErrInvalidProgram)
	}
}

// MarshalJSON emits the JSON program format v2.
func (p *Program) MarshalJSON() ([]byte, error) {
	w := programWire{Version: ProgramVersion, Inputs: p.inputs, Output: p.output}
	w.Ops = make([]programOpWire, len(p.ops))
	for i, op := range p.ops {
		ow := programOpWire{
			Op: op.Op, Out: op.Out, A: op.A, B: op.B, R: op.R,
			Value: op.Value, Method: op.methodName(), NoRescale: op.NoRescale,
		}
		if len(op.Values) > 0 {
			ow.Values = make([]wireComplex, len(op.Values))
			for j, v := range op.Values {
				ow.Values[j] = wireComplex{Re: real(v), Im: imag(v)}
			}
		}
		w.Ops[i] = ow
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses the JSON program format v2. The version field is
// mandatory and must equal ProgramVersion — v1 straight-line requests are a
// daemon wire shape, adapted by cmd/fastd, not part of this package's format.
func (p *Program) UnmarshalJSON(data []byte) error {
	var w programWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Version != ProgramVersion {
		return fmt.Errorf("program version %d unsupported (want %d): %w", w.Version, ProgramVersion, ErrInvalidProgram)
	}
	out := Program{inputs: w.Inputs, output: w.Output}
	out.ops = make([]ProgramOp, len(w.Ops))
	for i, ow := range w.Ops {
		m, pinned, err := ParseMethod(ow.Method)
		if err != nil {
			return fmt.Errorf("op %d (%s): %w", i, ow.Op, err)
		}
		op := ProgramOp{
			Op: ow.Op, Out: ow.Out, A: ow.A, B: ow.B, R: ow.R,
			Value: ow.Value, Method: m, MethodPinned: pinned, NoRescale: ow.NoRescale,
		}
		if len(ow.Values) > 0 {
			op.Values = make([]complex128, len(ow.Values))
			for j, v := range ow.Values {
				op.Values[j] = complex(v.Re, v.Im)
			}
		}
		out.ops[i] = op
	}
	*p = out
	return nil
}
