package fast

import (
	"github.com/fastfhe/fast/internal/ckks"
	"github.com/fastfhe/fast/internal/hemera"
)

// EvkCache is the process-wide shared evaluation-key tier: one byte-budgeted
// LRU every serving shard's Contexts report their key-switch traffic into,
// keyed by session + method + galois element. It is the level above each
// Context's private Hemera pool: the pool models the accelerator's on-chip
// Evk store, the shared cache models host memory serving N shards — keys a
// session's previous shard already faulted in are hits for whichever shard
// serves it after a failover (counted as cross-shard hits).
//
// The cache is an accounting tier for the modeled memory hierarchy: the
// functional key material lives in each Context's key set regardless, so a
// "miss" costs bookkeeping, never correctness. Attach it per Context with
// WithEvkCache; read it with Stats or the hemera.shared.* instruments.
type EvkCache struct {
	c *hemera.SharedCache
}

// EvkCacheStats mirrors the hemera.shared.* instrument values.
type EvkCacheStats struct {
	Hits, Misses, Evictions, CrossShardHits uint64
	ResidentBytes, Capacity                 int64
	ResidentKeys                            int
}

// NewEvkCache returns a shared evk cache bounded by budgetBytes. The
// observer (nil allowed) registers hemera.shared.{hits,misses,evictions,
// cross_shard_hits,resident_bytes} in its metrics registry.
func NewEvkCache(budgetBytes int64, ob *Observer) *EvkCache {
	var reg = ob.Registry()
	return &EvkCache{c: hemera.NewSharedCache(budgetBytes, reg)}
}

// Stats snapshots the cache counters.
func (e *EvkCache) Stats() EvkCacheStats {
	if e == nil {
		return EvkCacheStats{}
	}
	st := e.c.Stats()
	return EvkCacheStats{
		Hits:           st.Hits,
		Misses:         st.Misses,
		Evictions:      st.Evictions,
		CrossShardHits: st.CrossShardHits,
		ResidentBytes:  st.ResidentBytes,
		Capacity:       st.Capacity,
		ResidentKeys:   st.ResidentKeys,
	}
}

// WithEvkCache subscribes the context's key-switch traffic to a process-wide
// shared evk cache: every key-switching operation (Mul relinearisation,
// Rotate/RotateHoisted galois keys, Conjugate) records one request under
// session/method/key-ID, sized by the same evkBytes model the fault layer
// uses. shard tags which serving shard this context currently runs on — the
// cache counts a hit from a different shard than the filler as a cross-shard
// hit, the failover-effectiveness signal.
//
// The option is settings-only (it does not alter the parameter set), so it
// is equally valid on NewContext and SessionSnapshot.Restore — fastd passes
// it on restore with the surviving shard's ID. A nil cache is a no-op.
func WithEvkCache(cache *EvkCache, sessionID string, shard int) Option {
	return func(s *contextSettings) {
		if cache == nil {
			return
		}
		s.evk = &evkBinding{cache: cache.c, session: sessionID, shard: shard}
	}
}

// evkBinding is a Context's subscription to the shared tier.
type evkBinding struct {
	cache   *hemera.SharedCache
	session string
	shard   int
}

// request records one evaluation-key fetch against the shared tier. Purely
// additive next to faultState.request: it never skips or reorders the fault
// stream, so chaos invariants (deterministic per-seed fault patterns) are
// unchanged whether or not a shared cache is attached.
func (e *evkBinding) request(params *ckks.Parameters, keyID string, level int, m Method) {
	if e == nil {
		return
	}
	// Key identity must be independent of the requesting level — galois keys
	// are per (session, method, element), and sizing by the max level makes
	// the byte accounting level-stable too.
	key := e.session + "/" + m.String() + "/" + keyID
	size := evkBytes(params, params.MaxLevel(), m)
	_ = e.cache.GetOrFill(key, e.shard, size, nil)
}

// EvkKeyCount is a testing/telemetry helper: the number of distinct shared-
// tier keys a context with this configuration can generate (relin + one per
// rotation + conjugation, per enabled method).
func (c *Context) EvkKeyCount() int {
	n := 1 + len(c.cfg.Rotations)
	if c.cfg.Conjugation {
		n++
	}
	if c.cfg.EnableKLSS {
		n *= 2
	}
	return n
}
