package fast_test

import (
	"testing"

	fast "github.com/fastfhe/fast"
)

// FuzzContextConfig hardens NewContext: arbitrary configurations must either
// build a working context or be rejected with a typed error — never panic,
// never return a context that fails a basic encrypt/evaluate/decrypt probe.
func FuzzContextConfig(f *testing.F) {
	f.Add(9, 8, 2, 36, 1, false, int64(1))
	f.Add(0, 0, 0, 0, 0, true, int64(0)) // zero-value: defaults kick in
	f.Add(-3, 77, -1, 99, -12345, true, int64(-9))
	f.Add(4, 1, 1, 8, 0, false, int64(42))

	f.Fuzz(func(t *testing.T, logN, logSlots, levels, logScale, rot int, klss bool, seed int64) {
		// Bound only the dimensions that control memory/time, not validity:
		// keygen at LogN 14+ is too slow for a fuzz iteration, so fold large
		// exponents into [-2, 11] while keeping out-of-range values possible.
		if logN > 11 || logN < -2 {
			logN = logN%14 - 2
		}
		if levels > 6 || levels < -2 {
			levels = levels%9 - 2
		}
		cfg := fast.ContextConfig{
			LogN:        logN,
			LogSlots:    logSlots,
			Levels:      levels,
			LogScale:    logScale,
			Rotations:   []int{rot},
			Conjugation: klss,
			EnableKLSS:  klss,
			Seed:        seed,
		}
		ctx, err := fast.NewContext(cfg)
		if err != nil {
			return // rejected with an error: fine
		}
		// Accepted: the context must actually work.
		vals := make([]complex128, min(4, ctx.Slots()))
		for i := range vals {
			vals[i] = complex(float64(i)*0.25, -0.5)
		}
		ct, err := ctx.Encrypt(vals)
		if err != nil {
			t.Fatalf("accepted config cannot encrypt: %v (cfg %+v)", err, cfg)
		}
		sum, err := ctx.Add(ct, ct)
		if err != nil {
			t.Fatalf("accepted config cannot add: %v (cfg %+v)", err, cfg)
		}
		if got := ctx.Decrypt(sum); len(got) != ctx.Slots() {
			t.Fatalf("decrypt returned %d values, want %d", len(got), ctx.Slots())
		}
	})
}
