package fast

import (
	"fmt"
	"math/cmplx"
	"sync"
	"testing"
)

// sharedCtx builds one Context reused by the concurrency tests (context
// construction generates all keys, the expensive part).
var (
	sharedOnce sync.Once
	sharedC    *Context
	sharedErr  error
)

func sharedConcCtx(t *testing.T) *Context {
	t.Helper()
	sharedOnce.Do(func() {
		sharedC, sharedErr = NewContext(DefaultConfig())
	})
	if sharedErr != nil {
		t.Fatalf("NewContext: %v", sharedErr)
	}
	return sharedC
}

// TestConcurrentEvaluation runs mixed Mul/Rotate/Rescale/Conjugate traffic
// from many goroutines against a single Context and verifies every decrypted
// result. Run with -race to check the synchronisation claims of the
// concurrency model (README "Concurrency model").
func TestConcurrentEvaluation(t *testing.T) {
	ctx := sharedConcCtx(t)
	n := ctx.Slots()

	const goroutines = 8
	const iters = 3

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine method: half the workers drive the hybrid
			// backend, half KLSS — through the same evaluator.
			method := Hybrid
			if g%2 == 1 {
				method = KLSS
			}
			a := make([]complex128, n)
			b := make([]complex128, n)
			for i := range a {
				a[i] = complex(float64((i+g)%9)/20, float64(g%3)/10)
				b[i] = complex(0.3, -float64((i+2*g)%5)/25)
			}
			ca, err := ctx.Encrypt(a)
			if err != nil {
				errs <- fmt.Errorf("g%d: encrypt a: %v", g, err)
				return
			}
			cb, err := ctx.Encrypt(b)
			if err != nil {
				errs <- fmt.Errorf("g%d: encrypt b: %v", g, err)
				return
			}
			for it := 0; it < iters; it++ {
				// conj(rot((a+b)*a, 1)) with a deferred rescale in the
				// middle, exercising Add, Mul(NoRescale), Rescale, Rotate
				// and Conjugate concurrently.
				sum, err := ctx.Add(ca, cb)
				if err != nil {
					errs <- fmt.Errorf("g%d: add: %v", g, err)
					return
				}
				prod, err := ctx.Mul(sum, ca, WithMethod(method), NoRescale())
				if err != nil {
					errs <- fmt.Errorf("g%d: mul: %v", g, err)
					return
				}
				if prod, err = ctx.Rescale(prod); err != nil {
					errs <- fmt.Errorf("g%d: rescale: %v", g, err)
					return
				}
				rot, err := ctx.Rotate(prod, 1, WithMethod(method))
				if err != nil {
					errs <- fmt.Errorf("g%d: rotate: %v", g, err)
					return
				}
				conj, err := ctx.Conjugate(rot, WithMethod(method))
				if err != nil {
					errs <- fmt.Errorf("g%d: conjugate: %v", g, err)
					return
				}
				got := ctx.Decrypt(conj)
				for i := 0; i < n; i++ {
					j := (i + 1) % n
					want := cmplx.Conj((a[j] + b[j]) * a[j])
					if e := cmplx.Abs(got[i] - want); e > 1e-4 {
						errs <- fmt.Errorf("g%d it%d: slot %d: |err|=%.3e (got %v want %v)",
							g, it, i, e, got[i], want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWithMethodMatchesDefaultMethod pins the acceptance criterion that the
// per-call option path is bit-identical to the construction-time default
// path: a context defaulting to method m (via WithDefaultMethod) and a
// context defaulting to the other method but passing WithMethod(m) per call
// produce byte-identical ciphertexts. The two contexts share a seed, so the
// key material and encryption randomness agree.
func TestWithMethodMatchesDefaultMethod(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LogN = 10
	cfg.Levels = 3
	cfg.Seed = 42
	n := 1 << (cfg.LogN - 1)
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(float64(i%11)/22, -float64(i%5)/10)
	}

	for _, method := range []Method{Hybrid, KLSS} {
		other := Hybrid
		if method == Hybrid {
			other = KLSS
		}
		ctxDefault, err := NewContext(cfg, WithDefaultMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		ctxOption, err := NewContext(cfg, WithDefaultMethod(other))
		if err != nil {
			t.Fatal(err)
		}
		ctDefault, err := ctxDefault.Encrypt(v)
		if err != nil {
			t.Fatal(err)
		}
		ctOption, err := ctxOption.Encrypt(v)
		if err != nil {
			t.Fatal(err)
		}

		oldMul, err := ctxDefault.Mul(ctDefault, ctDefault)
		if err != nil {
			t.Fatal(err)
		}
		oldRot, err := ctxDefault.Rotate(ctDefault, 2)
		if err != nil {
			t.Fatal(err)
		}
		newMul, err := ctxOption.Mul(ctOption, ctOption, WithMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		newRot, err := ctxOption.Rotate(ctOption, 2, WithMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		for name, pair := range map[string][2]*Ciphertext{
			"mul":    {oldMul, newMul},
			"rotate": {oldRot, newRot},
		} {
			a, b := pair[0].ct, pair[1].ct
			if a.Level != b.Level || a.Scale != b.Scale {
				t.Fatalf("%s %v: level/scale mismatch: %d/%g vs %d/%g",
					name, method, a.Level, a.Scale, b.Level, b.Scale)
			}
			if !a.C0.Equal(b.C0) || !a.C1.Equal(b.C1) {
				t.Fatalf("%s %v: per-call WithMethod result differs from WithDefaultMethod path", name, method)
			}
		}
	}
}

// TestNoRescaleSemantics checks that NoRescale defers exactly the rescale:
// level and product scale are kept, and a later Context.Rescale yields the
// same ciphertext the eager path produces.
func TestNoRescaleSemantics(t *testing.T) {
	ctx := testCtx(t)
	n := ctx.Slots()
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(0.4, float64(i%4)/16)
	}
	ct, err := ctx.Encrypt(v)
	if err != nil {
		t.Fatal(err)
	}

	eager, err := ctx.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	deferred, err := ctx.Mul(ct, ct, NoRescale())
	if err != nil {
		t.Fatal(err)
	}
	if deferred.Level() != ct.Level() {
		t.Fatalf("NoRescale dropped a level: %d -> %d", ct.Level(), deferred.Level())
	}
	if deferred.Scale() <= eager.Scale() {
		t.Fatalf("NoRescale result should carry the product scale: %g <= %g",
			deferred.Scale(), eager.Scale())
	}
	late, err := ctx.Rescale(deferred)
	if err != nil {
		t.Fatal(err)
	}
	if late.Level() != eager.Level() || late.Scale() != eager.Scale() {
		t.Fatalf("deferred rescale landed at level %d scale %g, eager at %d/%g",
			late.Level(), late.Scale(), eager.Level(), eager.Scale())
	}
	if !late.ct.C0.Equal(eager.ct.C0) || !late.ct.C1.Equal(eager.ct.C1) {
		t.Fatal("Mul(NoRescale)+Rescale differs from eager Mul")
	}
}

// TestNewContextOptions covers the construction-time options surface.
func TestNewContextOptions(t *testing.T) {
	// WithDefaultMethod changes what option-less calls use.
	ctx, err := NewContext(DefaultConfig(), WithDefaultMethod(KLSS))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Method() != KLSS {
		t.Fatalf("WithDefaultMethod(KLSS): Method() = %v", ctx.Method())
	}

	// KLSS default without the KLSS key chain must be rejected.
	if _, err := NewContext(DefaultConfig(), WithKLSS(false), WithDefaultMethod(KLSS)); err == nil {
		t.Fatal("WithDefaultMethod(KLSS) without KLSS keys should fail")
	}

	// Options are applied even when cfg is the zero value (DefaultConfig
	// substitution must re-apply them).
	ctx2, err := NewContext(ContextConfig{}, WithRotations(3), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	v := make([]complex128, ctx2.Slots())
	v[3] = complex(1, 0)
	ct, err := ctx2.Encrypt(v)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := ctx2.Rotate(ct, 3)
	if err != nil {
		t.Fatalf("WithRotations(3) did not install the key: %v", err)
	}
	if got := ctx2.Decrypt(rot); cmplx.Abs(got[0]-complex(1, 0)) > 1e-4 {
		t.Fatalf("rotation by 3: slot 0 = %v, want 1", got[0])
	}
	// A rotation without a key still fails cleanly.
	if _, err := ctx2.Rotate(ct, 5); err == nil {
		t.Fatal("rotation without a generated key should fail")
	}

	// WithParallelism must not change results: compare against a serial
	// context built from the same seed.
	serial, err := NewContext(ContextConfig{}, WithRotations(3))
	if err != nil {
		t.Fatal(err)
	}
	ctSerial, err := serial.Encrypt(v)
	if err != nil {
		t.Fatal(err)
	}
	mulP, err := ctx2.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	mulS, err := serial.Mul(ctSerial, ctSerial)
	if err != nil {
		t.Fatal(err)
	}
	if !mulP.ct.C0.Equal(mulS.ct.C0) || !mulP.ct.C1.Equal(mulS.ct.C1) {
		t.Fatal("WithParallelism(2) changed Mul results vs serial evaluation")
	}
}

// TestSeedDeterminism verifies that two contexts with the same seed produce
// bit-identical ciphertexts — i.e. the sampler serialisation added for
// concurrency kept the deterministic stream order.
func TestSeedDeterminism(t *testing.T) {
	build := func() (*Context, *Ciphertext) {
		ctx, err := NewContext(DefaultConfig(), WithSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		v := make([]complex128, ctx.Slots())
		for i := range v {
			v[i] = complex(float64(i%13)/26, 0)
		}
		ct, err := ctx.Encrypt(v)
		if err != nil {
			t.Fatal(err)
		}
		return ctx, ct
	}
	_, ct1 := build()
	_, ct2 := build()
	if !ct1.ct.C0.Equal(ct2.ct.C0) || !ct1.ct.C1.Equal(ct2.ct.C1) {
		t.Fatal("same seed produced different ciphertexts: sampler stream order changed")
	}
}
