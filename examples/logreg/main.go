// Encrypted logistic-regression inference — the HELR-style workload (§6.2):
// a dot product between an encrypted feature vector and plaintext weights
// (rotation tree for the inner sum) followed by a polynomial approximation
// of the sigmoid, CKKS's way of evaluating non-linear functions (§2.2.2).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
)
import fast "github.com/fastfhe/fast"

const features = 16 // power of two so the rotation tree closes

// sigmoid3 is the degree-3 least-squares approximation of 1/(1+e^-x) on
// [-4,4] used by the original HELR paper: 0.5 + 0.15x - 0.0015x^3.
func sigmoid3(x float64) float64 { return 0.5 + 0.15*x - 0.0015*x*x*x }

func main() {
	rots := []int{}
	for r := 1; r < features; r *= 2 {
		rots = append(rots, r)
	}
	ctx, err := fast.NewContext(fast.DefaultConfig(), fast.WithRotations(rots...))
	if err != nil {
		log.Fatal(err)
	}
	slots := ctx.Slots()
	samples := slots / features

	rng := rand.New(rand.NewSource(7))
	weights := make([]float64, features)
	for i := range weights {
		weights[i] = rng.Float64()*2 - 1
	}
	// Pack `samples` feature vectors back to back.
	x := make([]complex128, slots)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, 0)
	}

	ct, err := ctx.Encrypt(x)
	if err != nil {
		log.Fatal(err)
	}

	// Dot product: multiply by the replicated weights, then fold with a
	// rotation tree so slot i of each sample block holds the full sum.
	wRep := make([]complex128, slots)
	for i := range wRep {
		wRep[i] = complex(weights[i%features], 0)
	}
	// NoRescale defers the post-multiplication rescale: the rotation tree
	// runs on the product scale and the sum pays a single rescale at the
	// end instead of one before the fold.
	acc, err := ctx.MulPlain(ct, wRep, fast.NoRescale())
	if err != nil {
		log.Fatal(err)
	}
	for r := 1; r < features; r *= 2 {
		rot, err := ctx.Rotate(acc, r)
		if err != nil {
			log.Fatal(err)
		}
		if acc, err = ctx.Add(acc, rot); err != nil {
			log.Fatal(err)
		}
	}
	if acc, err = ctx.Rescale(acc); err != nil {
		log.Fatal(err)
	}

	// Sigmoid: 0.5 + 0.15*z - 0.0015*z^3 (Horner on the encrypted z).
	z := acc
	z2, err := ctx.Mul(z, z)
	if err != nil {
		log.Fatal(err)
	}
	inner, err := ctx.MulConst(z2, -0.0015) // -0.0015*z^2
	if err != nil {
		log.Fatal(err)
	}
	inner, err = ctx.AddConst(inner, 0.15) // 0.15 - 0.0015*z^2
	if err != nil {
		log.Fatal(err)
	}
	pred, err := ctx.Mul(z, inner) // 0.15*z - 0.0015*z^3
	if err != nil {
		log.Fatal(err)
	}
	pred, err = ctx.AddConst(pred, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	got := ctx.Decrypt(pred)
	worst := 0.0
	for s := 0; s < samples; s++ {
		dot := 0.0
		for j := 0; j < features; j++ {
			// The rotation tree folds x[s*features+j] against the weight
			// at position (s*features+j) % features for every offset; the
			// block-aligned packing makes slot s*features hold the full
			// wrapped dot product.
			dot += weights[j] * real(x[s*features+j])
		}
		want := sigmoid3(dot)
		if e := math.Abs(real(got[s*features]) - want); e > worst {
			worst = e
		}
	}
	fmt.Printf("encrypted logistic inference: %d samples x %d features, max |error| %.2e, levels %d -> %d\n",
		samples, features, worst, ctx.MaxLevel(), pred.Level())
}
