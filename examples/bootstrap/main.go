// Functional bootstrapping: exhaust a ciphertext's modulus chain, refresh it
// with the full ModRaise → SubSum → CoeffToSlot → EvalMod → SlotToCoeff
// pipeline, and keep computing on the refreshed ciphertext — the operation
// that dominates every benchmark in the paper (87.7% of execution on
// average).
//
// The parameters are demonstration-sized (sparse secret, no security); the
// point is that the pipeline is real: the q0-multiples introduced by
// ModRaise are removed by a homomorphically evaluated sine.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"time"

	fast "github.com/fastfhe/fast"
)

func main() {
	start := time.Now()
	ctx, err := fast.NewBootstrapContext(fast.BootstrapContextConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap context ready in %v (%d slots, %d levels)\n",
		time.Since(start).Round(time.Millisecond), ctx.Slots(), ctx.MaxLevel())

	values := make([]complex128, ctx.Slots())
	for i := range values {
		values[i] = complex(0.5*math.Cos(float64(i)), 0.25*math.Sin(float64(i)))
	}
	ct, err := ctx.Encrypt(values)
	if err != nil {
		log.Fatal(err)
	}

	// Burn the whole chain, as a deep computation would.
	exhausted := ctx.ExhaustLevels(ct)
	fmt.Printf("ciphertext exhausted: level %d (no multiplications possible)\n", exhausted.Level())

	start = time.Now()
	refreshed, err := ctx.Bootstrap(exhausted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped in %v: level %d restored\n",
		time.Since(start).Round(time.Millisecond), refreshed.Level())

	worst := 0.0
	got := ctx.Decrypt(refreshed)
	for i := range values {
		if e := cmplx.Abs(got[i] - values[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("message preserved with max error %.2e\n", worst)

	// Prove the refreshed levels are usable: square the ciphertext.
	sq, err := ctx.Mul(refreshed, refreshed)
	if err != nil {
		log.Fatal(err)
	}
	got2 := ctx.Decrypt(sq)
	worst = 0
	for i := range values {
		if e := cmplx.Abs(got2[i] - values[i]*values[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("post-bootstrap squaring works: max error %.2e (level %d)\n", worst, sq.Level())
}
