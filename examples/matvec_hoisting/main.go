// Encrypted matrix-vector multiplication with the diagonal method and
// hoisted rotations — the linear-operation workload (convolutions,
// fully-connected layers) that motivates the paper's hoisting support
// (§2.2.3): all rotations of the input share a single decomposition.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	fast "github.com/fastfhe/fast"
)

const dim = 8 // matrix dimension (must divide the slot count)

// diagonal d of m as a plaintext vector replicated across the slots.
func diagonal(m [dim][dim]float64, d, slots int) []complex128 {
	out := make([]complex128, slots)
	for i := 0; i < slots; i++ {
		row := i % dim
		out[i] = complex(m[row][(row+d)%dim], 0)
	}
	return out
}

func main() {
	rotations := make([]int, dim)
	for i := range rotations {
		rotations[i] = i
	}
	// WithParallelism(-1) fans each operation's limb-level kernels (ModUp
	// NTTs, BConv, KeyMult lanes) out across all cores — the right knob for
	// a single latency-sensitive stream like this mat-vec.
	ctx, err := fast.NewContext(fast.DefaultConfig(),
		fast.WithRotations(rotations...),
		fast.WithParallelism(-1))
	if err != nil {
		log.Fatal(err)
	}
	slots := ctx.Slots()

	rng := rand.New(rand.NewSource(42))
	var m [dim][dim]float64
	for i := range m {
		for j := range m[i] {
			m[i][j] = rng.Float64() - 0.5
		}
	}
	x := make([]complex128, slots)
	for i := range x {
		x[i] = complex(rng.Float64()-0.5, 0)
	}

	ct, err := ctx.Encrypt(x)
	if err != nil {
		log.Fatal(err)
	}

	// y = M*x via the diagonal method: y = sum_d diag_d(M) * rot(x, d).
	// One hoisted decomposition serves all dim rotations.
	start := time.Now()
	rots, err := ctx.RotateHoisted(ct, rotations)
	if err != nil {
		log.Fatal(err)
	}
	var acc *fast.Ciphertext
	for d := 0; d < dim; d++ {
		term, err := ctx.MulPlain(rots[d], diagonal(m, d, slots))
		if err != nil {
			log.Fatal(err)
		}
		if acc == nil {
			acc = term
		} else if acc, err = ctx.Add(acc, term); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	got := ctx.Decrypt(acc)
	worst := 0.0
	for i := 0; i < slots; i++ {
		// Diagonal identity: y_i = sum_d M[row][(row+d)%dim] * x[(i+d)%n].
		row := i % dim
		ref := 0.0
		for d := 0; d < dim; d++ {
			ref += m[row][(row+d)%dim] * real(x[(i+d)%slots])
		}
		if e := math.Abs(real(got[i]) - ref); e > worst {
			worst = e
		}
	}
	fmt.Printf("encrypted %dx%d mat-vec over %d slots: max error %.2e, %v (1 hoisted decomposition, %d rotations)\n",
		dim, dim, slots, worst, elapsed, dim)
}
