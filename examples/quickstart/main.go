// Quickstart: encrypt two vectors, compute (a+b)*a homomorphically with both
// key-switching backends, rotate the result, and check everything against
// the plaintext computation.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	fast "github.com/fastfhe/fast"
)

func main() {
	// A laptop-friendly parameter set: N=2^11, 5 multiplicative levels,
	// both the hybrid (36-bit) and KLSS (60-bit) backends enabled.
	ctx, err := fast.NewContext(fast.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	n := ctx.Slots()
	fmt.Printf("CKKS context ready: %d slots, %d levels, KLSS=%v\n",
		n, ctx.MaxLevel(), ctx.SupportsKLSS())

	a := make([]complex128, n)
	b := make([]complex128, n)
	for i := range a {
		a[i] = complex(float64(i%10)/10, 0)
		b[i] = complex(0.5, float64(i%4)/8)
	}

	ca, err := ctx.Encrypt(a)
	if err != nil {
		log.Fatal(err)
	}
	cb, err := ctx.Encrypt(b)
	if err != nil {
		log.Fatal(err)
	}

	for _, method := range []fast.Method{fast.Hybrid, fast.KLSS} {
		// Method selection is per call (fast.WithMethod): no shared mode is
		// mutated, so the same loop could run from many goroutines at once.
		sum, err := ctx.Add(ca, cb)
		if err != nil {
			log.Fatal(err)
		}
		prod, err := ctx.Mul(sum, ca, fast.WithMethod(method)) // (a+b)*a — key-switched by `method`
		if err != nil {
			log.Fatal(err)
		}
		rot, err := ctx.Rotate(prod, 2, fast.WithMethod(method))
		if err != nil {
			log.Fatal(err)
		}

		got := ctx.Decrypt(rot)
		worst := 0.0
		for i := range got {
			want := (a[(i+2)%n] + b[(i+2)%n]) * a[(i+2)%n]
			if e := cmplx.Abs(got[i] - want); e > worst {
				worst = e
			}
		}
		fmt.Printf("%-6s backend: rotate((a+b)*a, 2) max error %.2e (level %d -> %d)\n",
			method, worst, ctx.MaxLevel(), rot.Level())
	}
}
