// Planner: the performance layer end to end — run the Aether offline
// analysis on the bootstrapping workload, show which key-switching method
// and hoisting configuration it assigns per level, then simulate the plan on
// the FAST accelerator and on the SHARP-class baseline.
package main

import (
	"fmt"
	"log"
	"os"

	fast "github.com/fastfhe/fast"
)

func main() {
	w := fast.BootstrapWorkload()
	acc := fast.FASTAccelerator()

	plan, err := fast.PlanWorkload(w, acc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Aether plan for %s (%d key-switch decisions):\n", w.Name(), len(plan.Decisions))
	fmt.Println("  op   level  method  hoist")
	for _, d := range plan.Decisions {
		fmt.Printf("  %3d  %5d  %-6v  %5d\n", d.OpIndex, d.Level, d.Method, d.Hoist)
	}
	if err := plan.Save(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nSimulated execution:")
	for _, tc := range []struct {
		acc  fast.Accelerator
		mode fast.PlanMode
		note string
	}{
		{fast.SHARPAccelerator(), fast.PlanAuto, "36-bit hybrid baseline"},
		{acc, fast.PlanOneKSW, "FAST hardware, single method"},
		{acc, fast.PlanHoisting, "FAST hardware, + hoisting"},
		{acc, fast.PlanAether, "FAST hardware, full Aether"},
	} {
		r, err := fast.Simulate(w, tc.acc, tc.mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %-28s %6.3f ms  (NTTU %.0f%%, HBM %.0f%%, evk %.0f MB)\n",
			r.Accelerator, tc.note, r.TimeMS, 100*r.NTTUUtil, 100*r.HBMUtil, r.EvkTrafficMB)
	}
}
