package fast

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// An observed context must account every operation in its registry and lay
// wall-clock spans on the trace.
func TestWithObserverAccountsOperations(t *testing.T) {
	ob := NewTracingObserver(0)
	ctx, err := NewContext(DefaultConfig(), WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]complex128, ctx.Slots())
	for i := range vals {
		vals[i] = complex(float64(i%7)/8, 0)
	}
	a, err := ctx.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Add(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Mul(a, b); err != nil { // MulRelin + Rescale
		t.Fatal(err)
	}
	if _, err := ctx.Mul(a, b, WithMethod(KLSS)); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Rotate(a, 1); err != nil {
		t.Fatal(err)
	}

	snap := ctx.Metrics()
	wantCounters := map[string]uint64{
		"ckks.encrypt.count":         2,
		"ckks.op.HAdd.count":         1,
		"ckks.op.HMult.hybrid.count": 1,
		"ckks.op.HMult.klss.count":   1,
		"ckks.op.HRot.hybrid.count":  1,
		"ckks.op.Rescale.count":      2,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Counters["ckks.sampler.draws"] == 0 {
		t.Error("sampler draws not accounted")
	}
	if h, ok := snap.Histograms["ckks.op.HMult.hybrid.latency_ns"]; !ok || h.Count != 1 || h.Sum <= 0 {
		t.Errorf("HMult latency histogram = %+v, want one positive observation", h)
	}
	if h, ok := snap.Histograms["ckks.keyswitch.hybrid.modup_ns"]; !ok || h.Count == 0 {
		t.Errorf("key-switch ModUp phase histogram missing: %+v", h)
	}

	// The trace must decode as Chrome trace-event JSON with eval spans.
	var buf bytes.Buffer
	if err := ob.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans < 5 {
		t.Errorf("trace has %d complete spans, want >= 5", spans)
	}
}

// An unobserved context must return an empty (but non-nil) snapshot.
func TestMetricsUnobserved(t *testing.T) {
	ctx, err := NewContext(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := ctx.Metrics()
	if snap == nil {
		t.Fatal("nil snapshot from unobserved context")
	}
	if len(snap.Counters) != 0 {
		t.Errorf("unobserved snapshot has counters: %v", snap.Counters)
	}
	if ctx.Observer() != nil {
		t.Error("Observer() non-nil on unobserved context")
	}
}

// SimulateObserved must publish the simulator's result and serve it over the
// observer's HTTP surface.
func TestSimulateObservedPublishesAndServes(t *testing.T) {
	ob := NewTracingObserver(0)
	rep, err := SimulateObserved(BootstrapWorkload(), FASTAccelerator(), PlanAuto, ob)
	if err != nil {
		t.Fatal(err)
	}
	snap := ob.Metrics()
	if got := snap.FloatGauges["sim.cycles"]; got != rep.Cycles {
		t.Errorf("sim.cycles = %g, want %g", got, rep.Cycles)
	}
	if snap.Counters["aether.decision.hybrid"]+snap.Counters["aether.decision.klss"] == 0 {
		t.Error("no Aether decision tallies")
	}

	addr, shutdown, err := ob.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	for _, path := range []string{"/metrics", "/debug/vars", "/trace.json"} {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
			continue
		}
		if path == "/metrics" && !strings.Contains(string(body), "sim_cycles") {
			t.Errorf("/metrics missing sim_cycles:\n%.400s", body)
		}
	}
}
