package fast

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// validProgram is a small well-formed program used as the mutation base for
// the validation table.
func validProgram() *Program {
	return NewProgram().In("x", "y").
		Mul("m", "x", "y").
		Rotate("r", "m", 1).
		AddConst("out", "r", 0.5).
		Return("out")
}

func TestProgramValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

// TestProgramValidateRejects mutates the base program one defect at a time
// and asserts each is rejected with ErrInvalidProgram and a distinguishing
// message.
func TestProgramValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Program
		message string
	}{
		{"empty program", func() *Program { return NewProgram() },
			"empty program"},
		{"missing output register", func() *Program {
			return NewProgram().In("x").AddConst("t", "x", 1)
		}, "missing output register"},
		{"empty input name", func() *Program {
			return NewProgram().In("x", "").AddConst("out", "x", 1).Return("out")
		}, "empty input register name"},
		{"input declared twice", func() *Program {
			return NewProgram().In("x", "x").AddConst("out", "x", 1).Return("out")
		}, "declared twice"},
		{"missing out register", func() *Program {
			return NewProgram().In("x").AddConst("", "x", 1).Return("out")
		}, "missing out register"},
		{"unknown op", func() *Program {
			return NewProgram().In("x").Append(ProgramOp{Op: "teleport", A: "x", Out: "out"}).Return("out")
		}, "unknown op"},
		{"undefined register", func() *Program {
			return NewProgram().In("x").Add("out", "x", "ghost").Return("out")
		}, "undefined register"},
		{"use before definition", func() *Program {
			return NewProgram().In("x").
				Add("out", "x", "later").
				AddConst("later", "x", 1).
				Return("out")
		}, "undefined register"},
		{"duplicate write", func() *Program {
			return NewProgram().In("x").
				AddConst("t", "x", 1).
				AddConst("t", "x", 2).
				Add("out", "t", "t").
				Return("out")
		}, "duplicate write"},
		{"write shadows input", func() *Program {
			return NewProgram().In("x", "y").
				AddConst("y", "x", 1).
				Add("out", "x", "y").
				Return("out")
		}, "shadows a program input"},
		{"output never written", func() *Program {
			return NewProgram().In("x").AddConst("t", "x", 1).Return("out")
		}, "never written"},
		{"unused input", func() *Program {
			return NewProgram().In("x", "y").AddConst("out", "x", 1).Return("out")
		}, "never used"},
		{"missing values", func() *Program {
			return NewProgram().In("x").MulPlain("out", "x", nil).Return("out")
		}, "missing values"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if err == nil {
				t.Fatal("defect accepted")
			}
			if !errors.Is(err, ErrInvalidProgram) {
				t.Fatalf("error %v is not ErrInvalidProgram", err)
			}
			if !strings.Contains(err.Error(), tc.message) {
				t.Fatalf("error %q does not contain %q", err, tc.message)
			}
		})
	}
}

// An input that is only consumed by the output declaration counts as used
// (returning an input passed through untouched is legal).
func TestProgramOutputCountsAsUse(t *testing.T) {
	p := NewProgram().In("x", "y").AddConst("t", "x", 1).Return("y")
	if err := p.Validate(); err != nil {
		t.Fatalf("pass-through output rejected: %v", err)
	}
}

func TestProgramJSONRoundTrip(t *testing.T) {
	p := NewProgram().In("x", "y").
		Mul("m", "x", "y", WithMethod(KLSS), NoRescale()).
		Rescale("ms", "m").
		Rotate("r", "ms", 3).
		MulPlain("mp", "r", []complex128{complex(1, 2), complex(3, -4)}).
		AddConst("out", "mp", 0.125).
		Return("out")
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"version":2`) {
		t.Fatalf("wire form lacks explicit version: %s", raw)
	}

	var back Program
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("round trip not stable:\n%s\n%s", raw, raw2)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped program invalid: %v", err)
	}
}

func TestProgramJSONVersionEnforced(t *testing.T) {
	var p Program
	err := json.Unmarshal([]byte(`{"version":1,"inputs":["x"],"ops":[],"output":"x"}`), &p)
	if err == nil || !strings.Contains(err.Error(), "version 1 unsupported") {
		t.Fatalf("v1 object accepted or wrong error: %v", err)
	}
	err = json.Unmarshal([]byte(`{"inputs":["x"],"ops":[],"output":"x"}`), &p)
	if err == nil {
		t.Fatal("versionless object accepted")
	}
}

func TestParseMethod(t *testing.T) {
	if m, pinned, err := ParseMethod(""); err != nil || pinned || m != Hybrid {
		t.Fatalf("empty: %v %v %v", m, pinned, err)
	}
	if m, pinned, err := ParseMethod("hybrid"); err != nil || !pinned || m != Hybrid {
		t.Fatalf("hybrid: %v %v %v", m, pinned, err)
	}
	if m, pinned, err := ParseMethod("klss"); err != nil || !pinned || m != KLSS {
		t.Fatalf("klss: %v %v %v", m, pinned, err)
	}
	if _, _, err := ParseMethod("quantum"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestPlanHoistGroups checks that rotation fan-out on a shared source is
// detected as one hoist group while unrelated rotations stay solo.
func TestPlanHoistGroups(t *testing.T) {
	ctx := sharedConcCtx(t)
	p := NewProgram().In("x", "y").
		Rotate("a", "x", 1).
		Rotate("b", "x", 2).
		Rotate("c", "x", 4).
		Rotate("d", "y", 1).
		Add("s1", "a", "b").
		Add("s2", "c", "d").
		Add("out", "s1", "s2").
		Return("out")
	plan, err := ctx.Plan(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := plan.HoistGroups()
	var sizes []int
	for _, g := range groups {
		sizes = append(sizes, len(g))
	}
	big := 0
	for _, g := range groups {
		if len(g) == 3 {
			big++
		} else if len(g) != 1 {
			t.Fatalf("unexpected group sizes %v", sizes)
		}
	}
	if big != 1 {
		t.Fatalf("want one 3-rotation hoist group over x, got sizes %v", sizes)
	}

	// Decisions expose the same structure: the grouped rotations share a
	// group index and carry Hoist=3.
	hoisted := 0
	for _, d := range plan.Decisions() {
		if d.Op == "rotate" && d.Hoist == 3 {
			hoisted++
		}
	}
	if hoisted != 3 {
		t.Fatalf("want 3 decisions with Hoist=3, got %d", hoisted)
	}
}

// TestPlanPinnedMethodSplitsGroups: a pinned KLSS rotation must not share a
// hoist group with hybrid rotations of the same source (ModUp bases differ).
func TestPlanPinnedMethodSplitsGroups(t *testing.T) {
	ctx := sharedConcCtx(t)
	p := NewProgram().In("x").
		Rotate("a", "x", 1).
		Rotate("b", "x", 2, WithMethod(KLSS)).
		Rotate("c", "x", 4).
		Add("s", "a", "b").
		Add("out", "s", "c").
		Return("out")
	plan, err := ctx.Plan(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.HoistGroups() {
		if len(g) == 3 {
			t.Fatal("pinned KLSS rotation merged into a hybrid hoist group")
		}
	}
}

func TestPlanFingerprintDeterministic(t *testing.T) {
	ctx := sharedConcCtx(t)
	p := validProgram()
	a, err := ctx.Plan(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Plan(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same program, different fingerprints: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	c, err := ctx.Plan(p, map[string]int{"x": 2, "y": 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different input levels, same fingerprint")
	}
	if a.Units() <= 0 {
		t.Fatalf("plan units = %g, want > 0", a.Units())
	}
}

// TestPlanFingerprintWithoutCompile pins the pre-compilation helper to the
// compiled plan's fingerprint: the cache key a serving layer computes with
// Context.PlanFingerprint must equal plan.Fingerprint() for every level
// resolution path (explicit, missing-defaults-to-max) and plan option.
func TestPlanFingerprintWithoutCompile(t *testing.T) {
	ctx := sharedConcCtx(t)
	p := validProgram()
	cases := []struct {
		name   string
		levels map[string]int
		opts   []PlanOption
	}{
		{"nil levels", nil, nil},
		{"explicit levels", map[string]int{"x": 2, "y": 2}, nil},
		{"partial levels default to max", map[string]int{"x": 1}, nil},
		{"pinned default method", nil, []PlanOption{PlanWithDefaultMethod(Hybrid)}},
	}
	for _, tc := range cases {
		plan, err := ctx.Plan(p, tc.levels, tc.opts...)
		if err != nil {
			t.Fatalf("%s: Plan: %v", tc.name, err)
		}
		if got := ctx.PlanFingerprint(p, tc.levels, tc.opts...); got != plan.Fingerprint() {
			t.Fatalf("%s: PlanFingerprint %s != compiled %s", tc.name, got, plan.Fingerprint())
		}
	}
	if got := ctx.PlanFingerprint(nil, nil); got != "" {
		t.Fatalf("nil program fingerprint = %q, want empty", got)
	}
}

func TestPlanErrors(t *testing.T) {
	ctx := sharedConcCtx(t)

	// Level exhaustion: Levels+1 rescaling multiplies.
	deep := NewProgram().In("x")
	prev := "x"
	for i := 0; i <= ctx.MaxLevel(); i++ {
		out := "m" + string(rune('0'+i))
		deep.Mul(out, prev, prev)
		prev = out
	}
	deep.Return(prev)
	if _, err := ctx.Plan(deep, nil); !errors.Is(err, ErrLevelExhausted) {
		t.Fatalf("deep mul chain: got %v, want ErrLevelExhausted", err)
	}

	// Invalid program surfaces through Plan too.
	if _, err := ctx.Plan(NewProgram(), nil); !errors.Is(err, ErrInvalidProgram) {
		t.Fatalf("empty program: got %v, want ErrInvalidProgram", err)
	}

	// PlanWithDefaultMethod(KLSS) on a KLSS-enabled context is fine...
	if _, err := ctx.Plan(validProgram(), nil, PlanWithDefaultMethod(KLSS)); err != nil {
		t.Fatalf("KLSS default on KLSS context: %v", err)
	}
	// ...but a KLSS pin on a context without KLSS keys is a plan-time error.
	cfg := DefaultConfig()
	cfg.LogN = 9
	cfg.Levels = 2
	cfg.Rotations = []int{1}
	cfg.EnableKLSS = false
	small, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pinned := NewProgram().In("x").Rotate("out", "x", 1, WithMethod(KLSS)).Return("out")
	if _, err := small.Plan(pinned, nil); !errors.Is(err, ErrMethodUnavailable) {
		t.Fatalf("pinned KLSS without keys: got %v, want ErrMethodUnavailable", err)
	}
	if _, err := small.Plan(validProgram(), nil, PlanWithDefaultMethod(KLSS)); !errors.Is(err, ErrMethodUnavailable) {
		t.Fatalf("KLSS default without keys: got %v, want ErrMethodUnavailable", err)
	}
}

func TestExecuteValidatesInputs(t *testing.T) {
	ctx := sharedConcCtx(t)
	plan, err := ctx.Plan(validProgram(), nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]complex128, ctx.Slots())
	cx, err := ctx.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}

	// Missing input.
	if _, err := ctx.Execute(nil, plan, map[string]*Ciphertext{"x": cx}); !errors.Is(err, ErrInvalidProgram) {
		t.Fatalf("missing input: got %v", err)
	}

	// Wrong level: plan assumed MaxLevel, hand it a dropped ciphertext.
	low, err := ctx.Rescale(cx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Execute(nil, plan, map[string]*Ciphertext{"x": low, "y": cx}); !errors.Is(err, ErrLevelMismatch) {
		t.Fatalf("level mismatch: got %v", err)
	}

	// Nil plan.
	if _, err := ctx.Execute(nil, nil, nil); !errors.Is(err, ErrInvalidProgram) {
		t.Fatalf("nil plan: got %v", err)
	}
}
