package fast

import (
	"errors"

	"github.com/fastfhe/fast/internal/ckks"
)

// ErrInvalidProgram reports a Program that fails static validation: an empty
// op list, a missing output, a read of an undefined register, a duplicate
// register write, a write shadowing a program input, an input that is never
// used, or an unknown op/method name. It is the only sentinel owned by this
// package rather than shared with the CKKS layer — programs exist only at the
// public API boundary.
var ErrInvalidProgram = errors.New("fast: invalid program")

// Typed error taxonomy. Every error returned by a Context method wraps one of
// these sentinels, so callers can branch on the failure class with errors.Is
// instead of matching message strings:
//
//	if _, err := ctx.Add(a, b); errors.Is(err, fast.ErrScaleMismatch) {
//	    b, _ = ctx.Rescale(b)
//	}
//
// The sentinels are shared with the internal CKKS layer — an error produced
// deep inside a kernel and one produced by boundary validation compare equal
// under errors.Is.
var (
	// ErrInvalidParameters reports a ContextConfig or parameter literal that
	// fails validation (ring degree, depth, scale or prime chain out of
	// range).
	ErrInvalidParameters = ckks.ErrInvalidParameters

	// ErrLevelMismatch reports an operand at a level an operation cannot
	// accept (e.g. below the level a linear transform was compiled at).
	ErrLevelMismatch = ckks.ErrLevelMismatch

	// ErrLevelExhausted reports an operation that must consume a level on a
	// ciphertext already at level 0 (e.g. Rescale at the chain bottom).
	ErrLevelExhausted = ckks.ErrLevelExhausted

	// ErrScaleMismatch reports an addition or subtraction whose operand
	// scales diverge beyond the rescaling drift tolerance.
	ErrScaleMismatch = ckks.ErrScaleMismatch

	// ErrSlotCountMismatch reports a vector incompatible with the slot count
	// (too many values to encode, a wrong-length mask, an oversized batch).
	ErrSlotCountMismatch = ckks.ErrSlotCountMismatch

	// ErrNotRelinearized reports a degree-2 intermediate reaching an
	// operation that requires a relinearised ciphertext. Reserved: the public
	// API always relinearises eagerly, so today this class is unreachable
	// from fast.Context, but the sentinel anchors the taxonomy for future
	// lazy-relinearisation APIs.
	ErrNotRelinearized = ckks.ErrNotRelinearized

	// ErrMethodUnavailable reports a request for a key-switching backend the
	// context was not built with (KLSS without EnableKLSS).
	ErrMethodUnavailable = ckks.ErrMethodUnavailable

	// ErrKeyMissing reports an evaluation-key lookup that found no key (e.g.
	// a rotation amount absent from ContextConfig.Rotations).
	ErrKeyMissing = ckks.ErrKeyMissing

	// ErrInvalidCiphertext reports a ciphertext violating its structural
	// invariants: nil, level out of range, limb count inconsistent with the
	// level, wrong ring degree, or a non-finite scale. Context methods
	// validate every ciphertext argument before touching kernels.
	ErrInvalidCiphertext = ckks.ErrInvalidCiphertext

	// ErrInvalidValue reports a scalar or vector entry that cannot be
	// encoded (NaN, Inf, overflow at the target scale, or a non-power-of-two
	// batch).
	ErrInvalidValue = ckks.ErrInvalidValue

	// ErrCanceled reports an operation abandoned because its context (passed
	// with WithContext or a *Ctx method) was canceled. The wrapped chain also
	// matches context.Canceled. Every pooled scratch buffer acquired by the
	// abandoned operation has been released; the input ciphertexts are
	// untouched.
	ErrCanceled = ckks.ErrCanceled

	// ErrDeadline reports an operation abandoned because its context deadline
	// expired (errors.Is also matches context.DeadlineExceeded), or a serving
	// request shed on arrival because its deadline could not be met.
	ErrDeadline = ckks.ErrDeadline

	// ErrCorruptSnapshot reports a session snapshot that fails integrity
	// validation — truncation, bit flips, wrong magic/version or inconsistent
	// key material. The checksum is verified before any parsing, so a corrupt
	// snapshot can never be partially restored into a session that would
	// decrypt wrongly; recovery paths skip the file and log instead.
	ErrCorruptSnapshot = ckks.ErrCorruptSnapshot
)
