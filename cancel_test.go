package fast_test

// Cancellation contract tests. The promises under test:
//
//   - a canceled context makes key-switch-bearing ops (Mul, Rotate,
//     Conjugate, hoisted rotations, Bootstrap) return promptly with an error
//     matching BOTH fast.ErrCanceled and context.Canceled (resp.
//     fast.ErrDeadline / context.DeadlineExceeded),
//   - "promptly" means under one uncancelled Mul's median latency — the
//     checkpoints sit at limb-chunk granularity inside the kernels, not just
//     at op entry,
//   - cancellation never leaks pooled scratch: the pool instrumentation's
//     gets == puts balance is unchanged by a canceled-only phase.

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	fast "github.com/fastfhe/fast"
)

func cancelTestContext(t *testing.T, opts ...fast.Option) *fast.Context {
	t.Helper()
	ctx, err := fast.NewContext(fast.ContextConfig{
		LogN:        9,
		Levels:      3,
		LogScale:    36,
		Rotations:   []int{1, -1, 4},
		Conjugation: true,
		EnableKLSS:  true,
		Seed:        7,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func encryptPair(t *testing.T, ctx *fast.Context) (*fast.Ciphertext, *fast.Ciphertext) {
	t.Helper()
	vals := make([]complex128, ctx.Slots())
	for i := range vals {
		vals[i] = complex(0.5, -0.25)
	}
	a, err := ctx.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// medianMul measures the median latency of n uncancelled max-level Muls.
func medianMul(t *testing.T, ctx *fast.Context, a, b *fast.Ciphertext, n int) time.Duration {
	t.Helper()
	times := make([]time.Duration, n)
	for i := range times {
		start := time.Now()
		if _, err := ctx.Mul(a, b); err != nil {
			t.Fatalf("uncancelled Mul: %v", err)
		}
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[n/2]
}

// TestCancellationPreCanceled: every key-switch-bearing op refuses a
// pre-canceled context up front, with both error taxonomies matched and
// latency far under one real operation.
func TestCancellationPreCanceled(t *testing.T) {
	ctx := cancelTestContext(t)
	a, b := encryptPair(t, ctx)
	median := medianMul(t, ctx, a, b, 5)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	ops := []struct {
		name string
		call func() error
	}{
		{"MulCtx", func() error { _, err := ctx.MulCtx(canceled, a, b); return err }},
		{"Mul+WithContext", func() error { _, err := ctx.Mul(a, b, fast.WithContext(canceled)); return err }},
		{"RotateCtx", func() error { _, err := ctx.RotateCtx(canceled, a, 1); return err }},
		{"ConjugateCtx", func() error { _, err := ctx.ConjugateCtx(canceled, a); return err }},
		{"RotateHoistedCtx", func() error { _, err := ctx.RotateHoistedCtx(canceled, a, []int{1, -1, 4}); return err }},
		{"MulCtx/KLSS", func() error { _, err := ctx.MulCtx(canceled, a, b, fast.WithMethod(fast.KLSS)); return err }},
	}
	for _, op := range ops {
		start := time.Now()
		err := op.call()
		elapsed := time.Since(start)
		if !errors.Is(err, fast.ErrCanceled) {
			t.Errorf("%s: err = %v, want fast.ErrCanceled", op.name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v does not match context.Canceled", op.name, err)
		}
		if elapsed >= median {
			t.Errorf("%s: canceled op took %v, want < uncancelled median %v", op.name, elapsed, median)
		}
	}

	// Expired deadline: same promptness, deadline taxonomy.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	start := time.Now()
	_, err := ctx.MulCtx(expired, a, b)
	elapsed := time.Since(start)
	if !errors.Is(err, fast.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline Mul: err = %v, want ErrDeadline + DeadlineExceeded", err)
	}
	if elapsed >= median {
		t.Errorf("expired deadline Mul took %v, want < %v", elapsed, median)
	}
}

// TestCancellationMidFlight cancels an in-progress evaluation from another
// goroutine and requires a prompt typed abort. The victim is a long chain of
// key-switching rotations under one context, so the cancellation is
// guaranteed to land while a kernel is running (or about to run); the
// promptness bound — measured from the instant cancel fires, not from chain
// start — proves the in-kernel checkpoints observe it instead of letting the
// chain run to completion.
func TestCancellationMidFlight(t *testing.T) {
	ctx := cancelTestContext(t)
	a, b := encryptPair(t, ctx)
	median := medianMul(t, ctx, a, b, 5)

	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var canceledAt time.Time
	timer := time.AfterFunc(2*time.Millisecond, func() {
		canceledAt = time.Now()
		cancel()
	})
	defer timer.Stop()

	var err error
	out := a
	start := time.Now()
	for time.Since(start) < 10*time.Second {
		out, err = ctx.RotateCtx(cctx, out, 1)
		if err != nil {
			break
		}
	}
	returnedAt := time.Now()
	if err == nil {
		t.Fatal("rotation chain was never canceled")
	}
	if !errors.Is(err, fast.ErrCanceled) {
		t.Fatalf("mid-flight cancel: err = %v, want fast.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v does not match context.Canceled", err)
	}
	// Prompt abort: from cancel firing to the error surfacing must cost at
	// most about one operation (the checkpoint granularity), with scheduling
	// slack. A failure here would mean the kernels only check at entry.
	latency := returnedAt.Sub(canceledAt)
	if bound := 2*median + 20*time.Millisecond; latency > bound {
		t.Errorf("cancellation latency %v exceeds %v (median op %v)", latency, bound, median)
	}
}

// poolBalance sums gets - puts over every ring-pool instrument in the
// snapshot — the number of pooled buffers currently checked out.
func poolBalance(m *fast.MetricsSnapshot) int64 {
	var bal int64
	for name, v := range m.Counters {
		if !strings.HasPrefix(name, "ring.pool.") {
			continue
		}
		switch {
		case strings.HasSuffix(name, ".gets"):
			bal += int64(v)
		case strings.HasSuffix(name, ".puts"):
			bal -= int64(v)
		}
	}
	return bal
}

// TestCancellationPoolLeakGuard: a canceled-only phase must not change the
// pools' gets/puts balance — every abort path returns its scratch.
func TestCancellationPoolLeakGuard(t *testing.T) {
	ob := fast.NewObserver()
	ctx := cancelTestContext(t, fast.WithObserver(ob))
	a, b := encryptPair(t, ctx)

	// Warm the pools with successful traffic on both backends first so the
	// canceled phase reuses pooled buffers instead of allocating.
	for i := 0; i < 3; i++ {
		if _, err := ctx.Mul(a, b); err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.Rotate(a, 1, fast.WithMethod(fast.KLSS)); err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.RotateHoisted(a, []int{1, -1, 4}); err != nil {
			t.Fatal(err)
		}
	}
	before := poolBalance(ob.Metrics())

	// Canceled-only phase: pre-canceled and mid-flight, across ops/backends.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 10; i++ {
		if _, err := ctx.MulCtx(canceled, a, b); !errors.Is(err, fast.ErrCanceled) {
			t.Fatalf("pre-canceled Mul: %v", err)
		}
		if _, err := ctx.RotateCtx(canceled, a, -1, fast.WithMethod(fast.KLSS)); !errors.Is(err, fast.ErrCanceled) {
			t.Fatalf("pre-canceled Rotate: %v", err)
		}
		mctx, mcancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(50*time.Microsecond, mcancel)
		_, err := ctx.RotateHoistedCtx(mctx, a, []int{1, -1, 4})
		timer.Stop()
		mcancel()
		if err != nil && !errors.Is(err, fast.ErrCanceled) {
			t.Fatalf("mid-flight hoisted rotate: %v", err)
		}
	}
	after := poolBalance(ob.Metrics())
	if before != after {
		t.Fatalf("pool leak: checked-out balance changed %d -> %d during canceled-only phase", before, after)
	}
}

// TestCancellationBootstrap: the deep pipeline honors cancellation too, both
// pre-canceled and mid-flight (the per-level / per-iteration checkpoints).
func TestCancellationBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping is slow")
	}
	bctx, err := fast.NewBootstrapContext(fast.BootstrapContextConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]complex128, bctx.Slots())
	for i := range vals {
		vals[i] = complex(0.3, 0.1)
	}
	ct, err := bctx.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}
	low := bctx.ExhaustLevels(ct)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := bctx.BootstrapCtx(canceled, low); !errors.Is(err, fast.ErrCanceled) {
		t.Fatalf("pre-canceled Bootstrap: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pre-canceled Bootstrap took %v, want immediate", elapsed)
	}

	mctx, mcancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, mcancel)
	defer timer.Stop()
	start = time.Now()
	_, err = bctx.BootstrapCtx(mctx, low)
	elapsed := time.Since(start)
	mcancel()
	if !errors.Is(err, fast.ErrCanceled) {
		t.Fatalf("mid-flight Bootstrap cancel: err = %v, want fast.ErrCanceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("mid-flight canceled Bootstrap took %v, want prompt abort", elapsed)
	}
}
