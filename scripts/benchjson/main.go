// Command benchjson converts `go test -bench` output (read from stdin) into a
// stable JSON record of the benchmark trajectory: one entry per benchmark with
// name, ns/op, B/op and allocs/op. Used by `make bench-json` to write
// BENCH_kernels.json so kernel performance is tracked in-repo, and by
// scripts/benchdiff to compare two recordings.
//
// Usage:
//
//	go test -run '^$' -bench 'NTT|Convert|Mul|Rotate' -benchmem ./... | go run ./scripts/benchjson > BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Record is the top-level JSON document.
type Record struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	rec := Record{Benchmarks: []Entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		e, ok := parseLine(line)
		if !ok {
			continue
		}
		rec.Benchmarks = append(rec.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkNTTForward/bits=36/N=4096-8  1234  987654 ns/op  201.1 MB/s  16 B/op  2 allocs/op
func parseLine(line string) (Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Entry{}, false
	}
	name := f[0]
	// Strip the trailing -GOMAXPROCS suffix for stable cross-machine names.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			e.NsPerOp, err = strconv.ParseFloat(val, 64)
			if err != nil {
				return Entry{}, false
			}
			seenNs = true
		case "MB/s":
			e.MBPerSec, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				e.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				e.AllocsPerOp = &v
			}
		}
	}
	return e, seenNs
}
