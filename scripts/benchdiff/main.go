// Command benchdiff compares two benchmark recordings produced by
// scripts/benchjson and prints a per-benchmark speedup table (old/new ratio on
// ns/op; >1 means the new recording is faster).
//
// Usage:
//
//	go run ./scripts/benchdiff OLD.json NEW.json
//	go run ./scripts/benchdiff -fail-below 0.9 BENCH_kernels.json fresh.json
//
// With -fail-below r, the exit status is 1 if any benchmark present in both
// recordings has speedup below r (i.e. regressed by more than (1-r)); use this
// as a cheap CI guard against kernel regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

type record struct {
	Benchmarks []entry `json:"benchmarks"`
}

func load(path string) (map[string]entry, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]entry, len(rec.Benchmarks))
	var order []string
	for _, e := range rec.Benchmarks {
		if _, dup := m[e.Name]; !dup {
			order = append(order, e.Name)
		}
		m[e.Name] = e
	}
	return m, order, nil
}

func main() {
	failBelow := flag.Float64("fail-below", 0, "exit 1 if any common benchmark's speedup (old/new) is below this ratio (0 disables)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-fail-below r] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldM, order, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	newM, newOrder, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	nameW := len("benchmark")
	common := 0
	for _, name := range order {
		if _, ok := newM[name]; !ok {
			continue
		}
		common++
		if len(name) > nameW {
			nameW = len(name)
		}
	}
	if common == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no common benchmarks between the two recordings")
		os.Exit(1)
	}

	fmt.Printf("%-*s  %14s  %14s  %8s  %s\n", nameW, "benchmark", "old ns/op", "new ns/op", "speedup", "allocs old→new")
	regressed := []string{}
	for _, name := range order {
		o := oldM[name]
		n, ok := newM[name]
		if !ok {
			continue
		}
		ratio := 0.0
		if n.NsPerOp > 0 {
			ratio = o.NsPerOp / n.NsPerOp
		}
		allocs := ""
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			allocs = fmt.Sprintf("%d→%d", *o.AllocsPerOp, *n.AllocsPerOp)
		}
		mark := ""
		if *failBelow > 0 && ratio < *failBelow {
			mark = "  REGRESSION"
			regressed = append(regressed, name)
		}
		fmt.Printf("%-*s  %14.1f  %14.1f  %7.2fx  %s%s\n", nameW, name, o.NsPerOp, n.NsPerOp, ratio, allocs, mark)
	}
	onlyNew := 0
	for _, name := range newOrder {
		if _, ok := oldM[name]; !ok {
			onlyNew++
		}
	}
	if onlyNew > 0 {
		fmt.Printf("(%d benchmarks only in %s)\n", onlyNew, flag.Arg(1))
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed below %.2fx: %v\n", len(regressed), *failBelow, regressed)
		os.Exit(1)
	}
}
