package fast

import (
	"context"
	"fmt"

	"github.com/fastfhe/fast/internal/ckks"
)

// BootstrapContextConfig describes a functional-bootstrapping context. The
// parameter regime is a demonstration one (sparse secret, shallow security):
// it exists to prove the full ModRaise → SubSum → CoeffToSlot → EvalMod →
// SlotToCoeff pipeline end to end, not to protect data.
type BootstrapContextConfig struct {
	// LogN is the ring degree exponent (default 12).
	LogN int
	// LogSlots is the packing exponent (default 4: 16 slots; the sparse
	// packing keeps the homomorphic DFT small).
	LogSlots int
	// Levels is the chain depth (default 24; the pipeline consumes ~20).
	Levels int
	// Seed fixes all randomness.
	Seed int64
}

// BootstrapContext is a Context that can also refresh exhausted ciphertexts.
type BootstrapContext struct {
	*Context
	bt *ckks.Bootstrapper
}

// NewBootstrapContext builds a context with a sparse (hamming-weight-16)
// secret, the Galois keys the bootstrap pipeline needs, and a precomputed
// bootstrapper.
func NewBootstrapContext(cfg BootstrapContextConfig) (*BootstrapContext, error) {
	if cfg.LogN == 0 {
		cfg.LogN = 12
	}
	if cfg.LogSlots == 0 {
		cfg.LogSlots = 4
	}
	if cfg.Levels == 0 {
		cfg.Levels = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 3
	}
	bp := ckks.DefaultBootstrapParameters()
	if cfg.Levels < bp.Depth() {
		return nil, fmt.Errorf("fast: bootstrap needs at least %d levels, got %d", bp.Depth(), cfg.Levels)
	}

	logQ := make([]int, cfg.Levels+1)
	logQ[0] = 50
	for i := 1; i < len(logQ); i++ {
		logQ[i] = 40
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:                cfg.LogN,
		LogSlots:            cfg.LogSlots,
		LogQ:                logQ,
		LogP:                []int{50, 50, 50},
		LogScale:            40,
		Alpha:               3,
		Seed:                cfg.Seed,
		SecretHammingWeight: 16,
	})
	if err != nil {
		return nil, err
	}

	ctx := &Context{params: params}
	ctx.encoder = ckks.NewEncoder(params)
	kgen := ckks.NewKeyGenerator(params)
	ctx.sk = kgen.GenSecretKey()
	pk := kgen.GenPublicKey(ctx.sk)
	ctx.enc = ckks.NewEncryptor(params, pk)
	ctx.dec = ckks.NewDecryptor(params, ctx.sk)
	ctx.keys, err = kgen.GenEvaluationKeySet(ctx.sk,
		[]ckks.KeySwitchMethod{ckks.Hybrid}, ckks.BootstrapRotations(params), true)
	if err != nil {
		return nil, err
	}
	ctx.eval, err = ckks.NewEvaluator(params, ctx.keys)
	if err != nil {
		return nil, err
	}
	bt, err := ckks.NewBootstrapper(params, ctx.encoder, ctx.eval, bp)
	if err != nil {
		return nil, err
	}
	return &BootstrapContext{Context: ctx, bt: bt}, nil
}

// Bootstrap refreshes a level-0 ciphertext, restoring usable multiplicative
// levels while preserving the message (to the scheme's approximation error).
func (c *BootstrapContext) Bootstrap(ct *Ciphertext) (*Ciphertext, error) {
	if err := c.validate(ct); err != nil {
		return nil, err
	}
	out, err := c.bt.Bootstrap(ct.ct)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{out}, nil
}

// BootstrapCtx is Bootstrap with cancellation: the multi-second pipeline polls
// ctx between stages and at every level of the homomorphic DFTs, polynomial
// evaluation and double-angle ladder, abandoning with an error matching
// fast.ErrCanceled or fast.ErrDeadline (and the corresponding context
// sentinel) within roughly one key-switch of ctx being done.
func (c *BootstrapContext) BootstrapCtx(ctx context.Context, ct *Ciphertext) (*Ciphertext, error) {
	if err := c.validate(ct); err != nil {
		return nil, err
	}
	out, err := c.bt.BootstrapCtx(ctx, ct.ct)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{out}, nil
}

// ExhaustLevels drops a ciphertext to level 0, simulating a computation that
// consumed the whole chain.
func (c *BootstrapContext) ExhaustLevels(ct *Ciphertext) *Ciphertext {
	return &Ciphertext{c.eval.DropLevel(ct.ct, ct.ct.Level)}
}
